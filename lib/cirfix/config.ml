(* GP parameters (paper Sec. 4.2). The paper runs popSize=5000 for up to 8
   generations / 12 h wall-clock on VCS; our in-process simulator lets the
   defaults be far smaller while keeping every ratio (thresholds, tournament
   size, elitism) identical. All values are CLI-tunable up to paper scale. *)

type t = {
  jobs : int;
      (* parallelism degree for candidate evaluation: 1 = the sequential
         path (no domains spawned); n > 1 = a pool of n domains scoring
         each proposed batch. Results are independent of [jobs] for a
         fixed seed (see DESIGN.md, "Parallel evaluation"). *)
  pop_size : int;
  max_generations : int;
  rt_threshold : float; (* probability of applying a repair template *)
  mut_threshold : float; (* mutation vs crossover split *)
  del_threshold : float; (* mutation sub-type split: delete *)
  ins_threshold : float; (* insert *)
  rep_threshold : float; (* replace *)
  tournament_size : int;
  elitism : float; (* fraction of top candidates carried over *)
  phi : float; (* x/z penalty weight in the fitness function *)
  seed : int;
  max_sim_steps : int; (* per-candidate simulation statement budget *)
  max_sim_time : int; (* per-candidate simulated-time horizon *)
  max_wall_seconds : float; (* resource bound for one trial *)
  max_probes : int; (* fitness evaluation budget for one trial *)
  use_fix_loc : bool; (* ablation A1: restrict insert/replace sources *)
  use_templates : bool;
  use_fault_loc : bool; (* when false, every statement is a target *)
  screen_mutants : bool;
      (* pre-simulation static screening: statically-doomed mutants are
         rejected (scored like compile errors) without being simulated *)
  screen_checks : Verilog.Analysis.check list;
      (* which analyses the screener runs; keep this to cheap checks whose
         findings imply a wasted simulation *)
  screen_races : bool;
      (* pre-simulation race screening: candidate modules containing a race
         hazard (Verilog.Race) are rejected without being simulated, under
         their own statistic (Rejected_racy) *)
  check_races : bool;
      (* runtime race checking: candidate simulations run with the dynamic
         same-timestep access checker enabled (Sim.Runtime); observed races
         are totalled across the trial *)
  prune : bool;
      (* static pruning lanes: fold semantically-equivalent candidates onto
         already-scored ones (Verilog.Canon) and skip provably-dead edits
         (Verilog.Dataflow) without simulating; disabled automatically when
         [check_races] is set or the target takes parameter overrides *)
  check_pruning : bool;
      (* verification mode: every static-lane decision is double-checked by
         simulating the candidate anyway and asserting fitness equality —
         slow, for differential testing only *)
  backend : Sim.Simulate.backend;
      (* simulation backend for candidate scoring: [Event] interprets on
         the effects scheduler; [Compiled] and [Auto] lower the design to
         the levelized cycle evaluator, falling back per design to the
         event engine on designs the compiler rejects (every fallback is
         recorded in stats and the journal, never silent) *)
  slice : bool;
      (* slice-based repair: extract the backward cone of the mismatching
         outputs (Verilog.Slice) and run mutation, localization and
         per-candidate simulation on the slice; every slice-plausible
         candidate is stitched back into the whole design and re-verified
         there before being reported (the acceptance gate — slicing can
         only prune, never unsoundly accept). Falls back silently to
         whole-design repair when the target is not the DUT module or the
         cone covers the whole design. *)
}

(* One evaluation domain per recommended core, minus one for the main
   (proposing) domain, clamped to [1, 16]. On small machines this is 1,
   i.e. the sequential path. *)
let default_jobs () =
  max 1 (min 16 (Domain.recommended_domain_count () - 1))

let default =
  {
    jobs = default_jobs ();
    pop_size = 40;
    max_generations = 12;
    rt_threshold = 0.2;
    mut_threshold = 0.7;
    del_threshold = 0.3;
    ins_threshold = 0.3;
    rep_threshold = 0.4;
    tournament_size = 5;
    elitism = 0.05;
    phi = 2.0;
    seed = 1;
    max_sim_steps = 150_000;
    max_sim_time = 200_000;
    max_wall_seconds = 120.0;
    max_probes = 4_000;
    use_fix_loc = true;
    use_templates = true;
    use_fault_loc = true;
    screen_mutants = true;
    screen_checks = [ Verilog.Analysis.Comb_loop ];
    (* Race detection is opt-in: screening narrows the search space beyond
       what the paper's loop does, and runtime checking costs per-access
       bookkeeping, so both default off. *)
    screen_races = false;
    check_races = false;
    prune = true;
    check_pruning = false;
    backend = Sim.Simulate.Auto;
    slice = false;
  }

(* Configuration fields recorded in a repair journal's run header.
   [jobs] is deliberately absent: journal content (minus wall-times) must
   be byte-identical across parallelism degrees, and the parallelism
   degree is the one knob that may differ between otherwise identical
   runs. *)
let journal_fields (t : t) : (string * Obs.Json.t) list =
  [
    ("seed", Obs.Json.Int t.seed);
    ("pop_size", Obs.Json.Int t.pop_size);
    ("max_generations", Obs.Json.Int t.max_generations);
    ("max_probes", Obs.Json.Int t.max_probes);
    ("phi", Obs.Json.Float t.phi);
    ("screen_mutants", Obs.Json.Bool t.screen_mutants);
    ("screen_races", Obs.Json.Bool t.screen_races);
    ("check_races", Obs.Json.Bool t.check_races);
    ("prune", Obs.Json.Bool t.prune);
    ("check_pruning", Obs.Json.Bool t.check_pruning);
    ("backend", Obs.Json.Str (Sim.Simulate.backend_to_string t.backend));
    ("slice", Obs.Json.Bool t.slice);
  ]

(* The paper's full-scale configuration, for completeness. *)
let paper_scale =
  {
    default with
    pop_size = 5000;
    max_generations = 8;
    max_wall_seconds = 12.0 *. 3600.0;
    max_probes = max_int;
  }
