(** A small fixed-size domain pool for parallel candidate evaluation
    (OCaml 5 [Domain] + [Mutex]/[Condition] work queue; no dependencies).

    The pool owns [jobs - 1] worker domains; the calling domain joins in
    draining the queue during {!map}, so [jobs] is the total parallelism
    degree. A pool with [jobs <= 1] spawns nothing and {!map} degenerates
    to [Array.map] on the calling domain — the sequential path. *)

type t

(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains that idle
    until work arrives. *)
val create : jobs:int -> t

(** Total parallelism degree (the [jobs] the pool was created with,
    floored at 1). *)
val size : t -> int

(** [map pool f xs] is [Array.map f xs] with the applications distributed
    over the pool. Results keep their input order. If one or more
    applications raise, the exception of the lowest-raising index is
    re-raised after the whole batch has drained (the pool stays usable).
    Tasks must not themselves assume domain affinity; [f] runs on
    whichever domain claims the task. Nested [map] calls from inside [f]
    are permitted: the inner caller helps drain the shared queue, so the
    pool cannot deadlock on its own tasks. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list pool f xs] is {!map} over a list, preserving order. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** Signal the workers to exit and join them. The pool must be idle (no
    concurrent {!map}). Calling {!map} afterwards falls back to the
    sequential path. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] over a fresh pool and always shuts the
    pool down, including on exceptions. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
