(* A hand-rolled domain pool: a mutex/condition-guarded FIFO of thunks
   drained by [jobs - 1] worker domains plus the domain that called [map].
   Each batch tracks its own completion count, so nested or back-to-back
   [map] calls share one queue without interfering. *)

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t; (* signaled when tasks are enqueued or on shutdown *)
  finished : Condition.t; (* signaled when some batch completes *)
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let size t = max 1 t.jobs

(* Worker loop: claim a task, run it unlocked, repeat. Tasks never raise:
   [map] wraps user code and stores exceptions in the batch's error slots. *)
let rec worker_loop (t : t) =
  Mutex.lock t.m;
  while Queue.is_empty t.tasks && not t.stop do
    Condition.wait t.work t.m
  done;
  match Queue.take_opt t.tasks with
  | Some task ->
      Mutex.unlock t.m;
      task ();
      worker_loop t
  | None ->
      (* stop was set and the queue is drained *)
      Mutex.unlock t.m

let create ~jobs : t =
  let t =
    {
      jobs;
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      tasks = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  t.workers <-
    List.init
      (max 0 (jobs - 1))
      (fun _ ->
        Domain.spawn (fun () ->
            (* A worker's whole lifetime shows as one span on its track,
               with the tasks it ran nested inside. *)
            let traced = Obs.Trace.enabled () in
            if traced then Obs.Trace.push ~cat:"pool" "pool.worker";
            worker_loop t;
            if traced then Obs.Trace.pop ()));
  t

let shutdown (t : t) =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map (t : t) (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.jobs <= 1 || t.stop || n = 1 then Array.map f xs
  else begin
    let results : 'b option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let remaining = ref n in
    if Obs.Metrics.enabled () then
      Obs.Metrics.add (Obs.Metrics.counter "pool.tasks") n;
    Mutex.lock t.m;
    for i = 0 to n - 1 do
      Queue.add
        (fun () ->
          (if not (Obs.Trace.enabled ()) then (
             try results.(i) <- Some (f xs.(i)) with e -> errors.(i) <- Some e)
           else
             let t0 = Obs.Trace.begin_ () in
             (try results.(i) <- Some (f xs.(i))
              with e -> errors.(i) <- Some e);
             Obs.Trace.complete ~cat:"pool" ~name:"pool.task" t0);
          Mutex.lock t.m;
          decr remaining;
          if !remaining = 0 then Condition.broadcast t.finished;
          Mutex.unlock t.m)
        t.tasks
    done;
    Condition.broadcast t.work;
    (* The calling domain drains the queue alongside the workers. It may
       execute tasks of an enclosing batch here; that is fine, every task
       decrements its own batch counter. *)
    let rec drain () =
      match Queue.take_opt t.tasks with
      | Some task ->
          Mutex.unlock t.m;
          task ();
          Mutex.lock t.m;
          drain ()
      | None -> ()
    in
    drain ();
    while !remaining > 0 do
      Condition.wait t.finished t.m
    done;
    Mutex.unlock t.m;
    (* Deterministic propagation: the exception of the lowest index wins. *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list (t : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  Array.to_list (map t f (Array.of_list xs))
