(** The CirFix fitness function (paper Sec. 3.2).

    Candidate repairs are scored by a bit-level comparison of the recorded
    simulation trace against the expected-behaviour oracle, sampled at every
    rising clock edge. Per bit: matching defined values add 1, matching x/z
    values add [phi], defined mismatches subtract 1, and comparisons where
    either side is x/z subtract [phi]. The normalized fitness is
    [max(0, sum) / total] in [0, 1]; 1.0 marks a plausible
    (testbench-adequate) repair.

    The aggregate {!score} is defined as the fold of the per-signal
    breakdown {!score_by_signal}, so per-signal sums and totals add up to
    the aggregate exactly — the identity the repair journal's attribution
    records rely on. Both passes index the actual trace by timestamp once,
    so scoring is linear in the trace length. *)

type score = {
  sum : float;  (** signed fitness sum over all timestamps and bits *)
  total : float;  (** total attainable magnitude *)
  fitness : float;  (** [max(0, sum) / total], in [0, 1] *)
}

type signal_score = {
  s_sum : float;  (** signed sum over this signal's timestamps and bits *)
  s_total : float;  (** attainable magnitude for this signal *)
  s_fitness : float;  (** [max(0, s_sum) / s_total], in [0, 1] *)
  first_divergence : int option;
      (** timestamp of the first sample where any bit of this signal
          scored negatively (defined mismatch or x/z mismatch); [None]
          when the signal never diverges from the oracle *)
}

(** Per-signal scoring breakdown of [actual] against [expected], sorted by
    signal name. Timestamps or signals missing from [actual] (e.g. after an
    aborted simulation) are scored as all-x; a narrower actual vector is
    zero-extended to the expected width. *)
val score_by_signal :
  phi:float ->
  expected:Sim.Recorder.trace ->
  actual:Sim.Recorder.trace ->
  (string * signal_score) list

(** Full scoring breakdown of [actual] against [expected]: the fold of
    {!score_by_signal}. *)
val score :
  phi:float ->
  expected:Sim.Recorder.trace ->
  actual:Sim.Recorder.trace ->
  score

(** [fitness ~phi ~expected ~actual] is [(score ...).fitness]. *)
val fitness :
  phi:float ->
  expected:Sim.Recorder.trace ->
  actual:Sim.Recorder.trace ->
  float

(** Output wires/registers whose value ever disagrees with the oracle: the
    starting mismatch set for fault localization (Algorithm 2, line 2).
    Sorted, duplicate-free. A signal is in this set iff its
    {!signal_score.first_divergence} is [Some _]. *)
val mismatched_signals :
  expected:Sim.Recorder.trace -> actual:Sim.Recorder.trace -> string list
