(* Candidate evaluation: materialize a patch, simulate the design under the
   instrumented testbench, and score it against the oracle. Evaluations are
   memoized on a structural digest of the materialized module (distinct
   patches frequently collapse to the same program).

   Evaluation splits into a pure compute step ([compute], safe to run on
   any domain: it touches only immutable fields of [t]) and a sequential
   accounting step that owns the memo cache and the counters. The batch API
   ([prepare] / [commit]) exploits this: a batch of candidates is scored
   speculatively across a domain pool, then committed one by one on the
   main domain with exactly the accounting the sequential path would have
   produced — which is what keeps probe counts and cache state identical
   for every [jobs] setting. *)

type status =
  | Simulated (* ran to completion (or quiesced) *)
  | Compile_error of string (* elaboration failed: the "does not compile" case *)
  | Sim_diverged of string (* budget blown or time limit: fitness 0 *)
  | Rejected_static of string
    (* the pre-simulation screener proved the mutant doomed (e.g. a
       zero-delay combinational loop): scored like a compile error, but
       the simulation budget is never touched *)
  | Rejected_oversize
    (* runaway insertion growth: rejected outright, like a mutant that
       does not compile, without parsing or simulating it *)
  | Rejected_racy of string
    (* the static race analyzer (Verilog.Race) found a hazard in the
       candidate module: rejected like a static screen hit, without
       spending a simulation *)

type outcome = {
  fitness : float;
  trace : Sim.Recorder.trace;
  status : status;
  races : int;
      (* dynamic races observed during this candidate's simulation; 0
         unless [cfg.check_races] and the candidate was simulated *)
}

type t = {
  problem : Problem.t;
  cfg : Config.t;
  original_size : int; (* node count of the unpatched module *)
  cache : (string, outcome) Hashtbl.t;
  mutable probes : int; (* simulations actually run *)
  mutable lookups : int; (* total evaluations requested *)
  mutable compile_errors : int; (* non-memoized compile failures *)
  mutable static_rejects : int; (* non-memoized screener rejections *)
  mutable oversize_rejects : int; (* non-memoized too-large rejections *)
  mutable racy_rejects : int; (* non-memoized race-screen rejections *)
  mutable runtime_races : int; (* dynamic races across non-memoized sims *)
}

let create (cfg : Config.t) (problem : Problem.t) : t =
  {
    problem;
    cfg;
    original_size =
      Verilog.Ast_utils.module_size (Problem.target_module problem);
    cache = Hashtbl.create 256;
    probes = 0;
    lookups = 0;
    compile_errors = 0;
    static_rejects = 0;
    oversize_rejects = 0;
    racy_rejects = 0;
    runtime_races = 0;
  }

(* Bloated candidates (runaway insertion growth) are rejected outright,
   like mutants that fail to compile. *)
let oversize (ev : t) (candidate : Verilog.Ast.module_decl) : bool =
  Verilog.Ast_utils.module_size candidate > (20 * ev.original_size) + 512

let key_of (candidate : Verilog.Ast.module_decl) : string =
  Verilog.Ast_utils.structural_hash candidate

let oversize_outcome =
  { fitness = 0.; trace = []; status = Rejected_oversize; races = 0 }

(* --- Observability ------------------------------------------------------
   Metric instruments are registered once at module load; recording is
   guarded by [Obs.Metrics.enabled] at each site so the disabled cost is a
   boolean load. The sequential accounting step owns all counter updates,
   which keeps metric values identical across [jobs] settings. *)

let m_lookups = Obs.Metrics.counter "eval.lookups"
let m_memo_hits = Obs.Metrics.counter "eval.memo_hits"
let m_simulated = Obs.Metrics.counter "eval.simulated"
let m_compile_error = Obs.Metrics.counter "eval.compile_error"
let m_sim_diverged = Obs.Metrics.counter "eval.sim_diverged"
let m_rejected_static = Obs.Metrics.counter "eval.rejected_static"
let m_rejected_oversize = Obs.Metrics.counter "eval.rejected_oversize"
let m_rejected_racy = Obs.Metrics.counter "eval.rejected_racy"
let m_runtime_races = Obs.Metrics.counter "eval.runtime_races"

let status_label = function
  | Simulated -> "simulated"
  | Compile_error _ -> "compile_error"
  | Sim_diverged _ -> "sim_diverged"
  | Rejected_static _ -> "rejected_static"
  | Rejected_oversize -> "rejected_oversize"
  | Rejected_racy _ -> "rejected_racy"

(* Evaluations requested minus candidates actually scored: how many
   lookups the memo cache absorbed. *)
let memo_hits (ev : t) : int =
  ev.lookups
  - (ev.probes + ev.static_rejects + ev.oversize_rejects + ev.racy_rejects)

(* Score one candidate without touching the cache or any counter. Reads
   only immutable state ([cfg], [problem], [original_size]), so concurrent
   calls from worker domains are safe. *)
let compute_unspanned (ev : t) (candidate : Verilog.Ast.module_decl) : outcome =
  if oversize ev candidate then oversize_outcome
  else begin
    let screened =
      if ev.cfg.screen_mutants then begin
        let t = if Obs.Trace.enabled () then Obs.Trace.begin_ () else 0 in
        let r = Verilog.Analysis.screen ~checks:ev.cfg.screen_checks candidate in
        if Obs.Trace.enabled () then
          Obs.Trace.complete ~cat:"eval" ~name:"screen.static" t;
        r
      end
      else None
    in
    let racy () =
      if ev.cfg.screen_races then begin
        let t = if Obs.Trace.enabled () then Obs.Trace.begin_ () else 0 in
        let r = Verilog.Race.screen ~hazards:Verilog.Race.all_hazards candidate in
        if Obs.Trace.enabled () then
          Obs.Trace.complete ~cat:"eval" ~name:"screen.race" t;
        r
      end
      else None
    in
    match screened with
    | Some msg ->
        (* Pre-simulation screening: the candidate is statically doomed,
           so reject it (scored like a compile error) without spending a
           simulation. *)
        { fitness = 0.; trace = []; status = Rejected_static msg; races = 0 }
    | None ->
    match racy () with
    | Some msg ->
        (* Race screening: the candidate module contains a static race
           hazard; rejected without a simulation, under its own count. *)
        { fitness = 0.; trace = []; status = Rejected_racy msg; races = 0 }
    | None ->
        let design = Problem.with_candidate ev.problem candidate in
        (* Candidates get a budget proportional to the golden run: a mutant
           spinning in a zero-delay loop is cut off quickly instead of
           burning the whole per-candidate ceiling. *)
        let max_steps =
          min ev.cfg.max_sim_steps ((ev.problem.golden_steps * 10) + 5_000)
        in
        let max_time =
          min ev.cfg.max_sim_time ((ev.problem.golden_end_time * 2) + 1_000)
        in
        (match
           Sim.Simulate.run ~max_steps ~max_time
             ~check_races:ev.cfg.check_races design ev.problem.spec
         with
        | Error (Sim.Simulate.Elab_failure msg) ->
            { fitness = 0.; trace = []; status = Compile_error msg; races = 0 }
        | Ok r -> (
            let races = List.length r.races in
            match r.outcome with
            | Sim.Engine.Finished | Sim.Engine.Quiescent ->
                {
                  fitness =
                    Fitness.fitness ~phi:ev.cfg.phi
                      ~expected:ev.problem.oracle ~actual:r.trace;
                  trace = r.trace;
                  status = Simulated;
                  races;
                }
            | Sim.Engine.Time_limit_reached ->
                (* Score whatever trace was produced; a looping mutant is
                   still penalized by its missing samples. *)
                {
                  fitness =
                    Fitness.fitness ~phi:ev.cfg.phi
                      ~expected:ev.problem.oracle ~actual:r.trace;
                  trace = r.trace;
                  status = Sim_diverged "time limit";
                  races;
                }
            | Sim.Engine.Budget_exceeded m ->
                { fitness = 0.; trace = []; status = Sim_diverged m; races }))
  end

(* [compute_unspanned] under a per-candidate trace span carrying the
   resulting status; runs on whatever domain called it, so the span lands
   on that worker's track. *)
let compute (ev : t) (candidate : Verilog.Ast.module_decl) : outcome =
  if not (Obs.Trace.enabled ()) then compute_unspanned ev candidate
  else begin
    let t = Obs.Trace.begin_ () in
    let o = compute_unspanned ev candidate in
    Obs.Trace.complete ~cat:"eval"
      ~args:[ ("status", Obs.Json.Str (status_label o.status)) ]
      ~name:"evaluate" t;
    o
  end

(* Counter accounting for a freshly computed (non-memoized) outcome,
   mirroring what the sequential path charges per status. *)
let account (ev : t) (o : outcome) =
  ev.runtime_races <- ev.runtime_races + o.races;
  (if Obs.Metrics.enabled () then begin
     if o.races > 0 then Obs.Metrics.add m_runtime_races o.races;
     Obs.Metrics.incr
       (match o.status with
       | Simulated -> m_simulated
       | Compile_error _ -> m_compile_error
       | Sim_diverged _ -> m_sim_diverged
       | Rejected_static _ -> m_rejected_static
       | Rejected_oversize -> m_rejected_oversize
       | Rejected_racy _ -> m_rejected_racy)
   end);
  match o.status with
  | Rejected_static _ -> ev.static_rejects <- ev.static_rejects + 1
  | Rejected_racy _ -> ev.racy_rejects <- ev.racy_rejects + 1
  | Rejected_oversize -> ev.oversize_rejects <- ev.oversize_rejects + 1
  | Compile_error _ ->
      ev.probes <- ev.probes + 1;
      ev.compile_errors <- ev.compile_errors + 1
  | Simulated | Sim_diverged _ -> ev.probes <- ev.probes + 1

let eval_module (ev : t) (candidate : Verilog.Ast.module_decl) : outcome =
  ev.lookups <- ev.lookups + 1;
  if Obs.Metrics.enabled () then Obs.Metrics.incr m_lookups;
  let key = key_of candidate in
  match Hashtbl.find_opt ev.cache key with
  | Some o ->
      if Obs.Metrics.enabled () then Obs.Metrics.incr m_memo_hits;
      o
  | None ->
      let outcome = compute ev candidate in
      account ev outcome;
      Hashtbl.replace ev.cache key outcome;
      outcome

let eval_patch (ev : t) (original : Verilog.Ast.module_decl) (p : Patch.t) :
    outcome =
  eval_module ev (Patch.apply original p)

(* Per-signal attribution of an outcome's fitness against the problem's
   oracle, under the configured phi — the breakdown behind the journal's
   [attribution] records. *)
let attribution (ev : t) (o : outcome) : (string * Fitness.signal_score) list =
  Fitness.score_by_signal ~phi:ev.cfg.phi ~expected:ev.problem.oracle
    ~actual:o.trace

(* --- Batched evaluation over a domain pool ------------------------------ *)

type prepared = {
  ev : t;
  candidates : Verilog.Ast.module_decl array;
  keys : string array;
  computed : (string, outcome) Hashtbl.t;
      (* speculative results for keys that were cache misses at prepare
         time; empty on the sequential path *)
}

let prepare (ev : t) ~(pool : Pool.t)
    (candidates : Verilog.Ast.module_decl array) : prepared =
  let t_prep = if Obs.Trace.enabled () then Obs.Trace.begin_ () else 0 in
  let keys = Array.map key_of candidates in
  let computed = Hashtbl.create (Array.length candidates) in
  if Pool.size pool > 1 then begin
    (* First occurrence of each un-cached key gets scored; duplicates and
       cache hits are resolved at commit time, exactly as the sequential
       path would. *)
    let to_run = ref [] in
    Array.iteri
      (fun i key ->
        if
          (not (Hashtbl.mem ev.cache key)) && not (Hashtbl.mem computed key)
        then begin
          Hashtbl.replace computed key oversize_outcome (* claimed; overwritten below *);
          to_run := (key, candidates.(i)) :: !to_run
        end)
      keys;
    let batch = Array.of_list (List.rev !to_run) in
    let outcomes = Pool.map pool (fun (_, c) -> compute ev c) batch in
    Array.iteri
      (fun j (key, _) -> Hashtbl.replace computed key outcomes.(j))
      batch
  end;
  if Obs.Trace.enabled () then
    Obs.Trace.complete ~cat:"eval"
      ~args:
        [
          ("batch", Obs.Json.Int (Array.length candidates));
          ("speculated", Obs.Json.Int (Hashtbl.length computed));
        ]
      ~name:"eval.prepare_batch" t_prep;
  { ev; candidates; keys; computed }

(* Commit candidate [i]: byte-for-byte the accounting of [eval_module],
   with the simulation replaced by the speculative result when one was
   prepared. On a pool of size 1 nothing was prepared, so this IS
   [eval_module]. Commit order defines the sequential semantics: callers
   must commit in batch index order and may stop early (un-committed
   speculative work is discarded, leaving cache and counters exactly as a
   sequential run would). *)
let commit (p : prepared) (i : int) : outcome =
  let ev = p.ev in
  ev.lookups <- ev.lookups + 1;
  if Obs.Metrics.enabled () then Obs.Metrics.incr m_lookups;
  let key = p.keys.(i) in
  match Hashtbl.find_opt ev.cache key with
  | Some o ->
      if Obs.Metrics.enabled () then Obs.Metrics.incr m_memo_hits;
      o
  | None ->
      let outcome =
        match Hashtbl.find_opt p.computed key with
        | Some o -> o
        | None -> compute ev p.candidates.(i)
      in
      account ev outcome;
      Hashtbl.replace ev.cache key outcome;
      outcome
