(* Candidate evaluation: materialize a patch, simulate the design under the
   instrumented testbench, and score it against the oracle. Evaluations are
   memoized on a structural digest of the materialized module (distinct
   patches frequently collapse to the same program).

   Evaluation splits into a pure compute step ([compute], safe to run on
   any domain: it touches only immutable fields of [t]) and a sequential
   accounting step that owns the memo cache and the counters. The batch API
   ([prepare] / [commit]) exploits this: a batch of candidates is scored
   speculatively across a domain pool, then committed one by one on the
   main domain with exactly the accounting the sequential path would have
   produced — which is what keeps probe counts and cache state identical
   for every [jobs] setting. *)

type status =
  | Simulated (* ran to completion (or quiesced) *)
  | Compile_error of string (* elaboration failed: the "does not compile" case *)
  | Sim_diverged of string (* budget blown or time limit: fitness 0 *)
  | Rejected_static of string
    (* the pre-simulation screener proved the mutant doomed (e.g. a
       zero-delay combinational loop): scored like a compile error, but
       the simulation budget is never touched *)
  | Rejected_oversize
    (* runaway insertion growth: rejected outright, like a mutant that
       does not compile, without parsing or simulating it *)
  | Rejected_racy of string
    (* the static race analyzer (Verilog.Race) found a hazard in the
       candidate module: rejected like a static screen hit, without
       spending a simulation *)
  | Skipped_dead_edit
    (* the dataflow pruner proved the candidate's edit dead: erasing
       provably-dead code from it yields the same skeleton as erasing it
       from the seed, so the seed's fitness is reused without simulating *)

type outcome = {
  fitness : float;
  trace : Sim.Recorder.trace;
  status : status;
  races : int;
      (* dynamic races observed during this candidate's simulation; 0
         unless [cfg.check_races] and the candidate was simulated *)
  sim_backend : string;
      (* which backend actually ran ("event", "compiled", or
         "fallback:<reason>" per Sim.Simulate.backend_used_to_string);
         "" when the candidate was never simulated *)
  sim_seconds : float;
      (* wall time inside Sim.Simulate.run for this outcome; 0 when never
         simulated. Timing only — excluded from journals. *)
}

type t = {
  problem : Problem.t;
  cfg : Config.t;
  original_size : int; (* node count of the unpatched module *)
  cache : (string, outcome) Hashtbl.t;
  sem_tbl : (string, string) Hashtbl.t;
      (* semantic hash -> cache key of the first candidate that produced
         it (the donor); consulted on structural cache misses *)
  lanes_enabled : bool;
      (* static pruning lanes active: [cfg.prune], no runtime race
         checking (reused outcomes cannot reproduce dynamic race counts),
         and the target module is never instantiated with parameter
         overrides (Dataflow/Canon facts assume declaration defaults) *)
  seed_key : string; (* structural key of the unpatched module *)
  seed_prune_hash : string option;
      (* dead-edit skeleton of the unpatched module, when lanes are on *)
  mutable probes : int; (* simulations actually run *)
  mutable lookups : int; (* total evaluations requested *)
  mutable compile_errors : int; (* non-memoized compile failures *)
  mutable static_rejects : int; (* non-memoized screener rejections *)
  mutable oversize_rejects : int; (* non-memoized too-large rejections *)
  mutable racy_rejects : int; (* non-memoized race-screen rejections *)
  mutable runtime_races : int; (* dynamic races across non-memoized sims *)
  mutable semantic_hits : int; (* lookups served by the semantic lane *)
  mutable dead_edit_skips : int; (* lookups served by the dead-edit lane *)
  mutable lane_seconds : float; (* wall time spent deciding the lanes *)
  mutable sims_event : int; (* non-memoized sims run on the event engine *)
  mutable sims_compiled : int; (* non-memoized sims run compiled *)
  mutable compiled_fallbacks : int;
      (* sims where compilation was requested but the design fell back to
         the event engine (counted under [sims_event] as well) *)
  mutable sim_seconds_event : float; (* in-sim wall time, event engine *)
  mutable sim_seconds_compiled : float; (* in-sim wall time, compiled *)
}

(* Memo keys are prefixed with the configured backend so cached fitness
   can never leak across backends: flipping [--backend] between otherwise
   identical runs always re-simulates. *)
let key_of (cfg : Config.t) (candidate : Verilog.Ast.module_decl) : string =
  Sim.Simulate.backend_to_string cfg.backend
  ^ "|"
  ^ Verilog.Ast_utils.structural_hash candidate

(* The semantic/dead-edit facts are computed against the target module's
   declaration-default parameters, so a design that instantiates the
   target with `#(...)` overrides anywhere invalidates them. *)
let target_param_overridden (problem : Problem.t) : bool =
  List.exists
    (fun (m : Verilog.Ast.module_decl) ->
      List.exists
        (fun (it : Verilog.Ast.item) ->
          match it.it with
          | Verilog.Ast.Instance { mod_name; params; _ } ->
              String.equal mod_name problem.target && params <> []
          | _ -> false)
        m.items)
    problem.design

let create (cfg : Config.t) (problem : Problem.t) : t =
  let target = Problem.target_module problem in
  let lanes_enabled =
    cfg.prune && (not cfg.check_races)
    && not (target_param_overridden problem)
  in
  {
    problem;
    cfg;
    original_size = Verilog.Ast_utils.module_size target;
    cache = Hashtbl.create 256;
    sem_tbl = Hashtbl.create 256;
    lanes_enabled;
    seed_key = key_of cfg target;
    seed_prune_hash =
      (if lanes_enabled then Some (Verilog.Dataflow.prune_hash target)
       else None);
    probes = 0;
    lookups = 0;
    compile_errors = 0;
    static_rejects = 0;
    oversize_rejects = 0;
    racy_rejects = 0;
    runtime_races = 0;
    semantic_hits = 0;
    dead_edit_skips = 0;
    lane_seconds = 0.;
    sims_event = 0;
    sims_compiled = 0;
    compiled_fallbacks = 0;
    sim_seconds_event = 0.;
    sim_seconds_compiled = 0.;
  }

(* Bloated candidates (runaway insertion growth) are rejected outright,
   like mutants that fail to compile. *)
let oversize (ev : t) (candidate : Verilog.Ast.module_decl) : bool =
  Verilog.Ast_utils.module_size candidate > (20 * ev.original_size) + 512

let oversize_outcome =
  {
    fitness = 0.;
    trace = [];
    status = Rejected_oversize;
    races = 0;
    sim_backend = "";
    sim_seconds = 0.;
  }

(* --- Observability ------------------------------------------------------
   Metric instruments are registered once at module load; recording is
   guarded by [Obs.Metrics.enabled] at each site so the disabled cost is a
   boolean load. The sequential accounting step owns all counter updates,
   which keeps metric values identical across [jobs] settings. *)

let m_lookups = Obs.Metrics.counter "eval.lookups"
let m_memo_hits = Obs.Metrics.counter "eval.memo_hits"
let m_simulated = Obs.Metrics.counter "eval.simulated"
let m_compile_error = Obs.Metrics.counter "eval.compile_error"
let m_sim_diverged = Obs.Metrics.counter "eval.sim_diverged"
let m_rejected_static = Obs.Metrics.counter "eval.rejected_static"
let m_rejected_oversize = Obs.Metrics.counter "eval.rejected_oversize"
let m_rejected_racy = Obs.Metrics.counter "eval.rejected_racy"
let m_runtime_races = Obs.Metrics.counter "eval.runtime_races"
let m_semantic_hits = Obs.Metrics.counter "eval.semantic_hits"
let m_dead_edit_skips = Obs.Metrics.counter "eval.dead_edit_skips"
let m_sims_event = Obs.Metrics.counter "eval.sims_event"
let m_sims_compiled = Obs.Metrics.counter "eval.sims_compiled"
let m_compiled_fallbacks = Obs.Metrics.counter "eval.compiled_fallbacks"

let status_label = function
  | Simulated -> "simulated"
  | Compile_error _ -> "compile_error"
  | Sim_diverged _ -> "sim_diverged"
  | Rejected_static _ -> "rejected_static"
  | Rejected_oversize -> "rejected_oversize"
  | Rejected_racy _ -> "rejected_racy"
  | Skipped_dead_edit -> "skipped_dead_edit"

(* Evaluations requested minus candidates actually scored: how many
   lookups the memo cache absorbed. Static-lane hits (semantic folds and
   dead-edit skips) are counted under their own statistics, not here. *)
let memo_hits (ev : t) : int =
  ev.lookups
  - (ev.probes + ev.static_rejects + ev.oversize_rejects + ev.racy_rejects
   + ev.semantic_hits + ev.dead_edit_skips)

(* Elaborate and simulate one candidate — the post-screening tail of
   [compute_unspanned], also the reference evaluation [cfg.check_pruning]
   verifies static-lane decisions against. Touches no mutable state. *)
let simulate_candidate (ev : t) (candidate : Verilog.Ast.module_decl) :
    outcome =
  let design = Problem.with_candidate ev.problem candidate in
  (* Candidates get a budget proportional to the golden run: a mutant
     spinning in a zero-delay loop is cut off quickly instead of
     burning the whole per-candidate ceiling. *)
  let max_steps =
    min ev.cfg.max_sim_steps ((ev.problem.golden_steps * 10) + 5_000)
  in
  let max_time =
    min ev.cfg.max_sim_time ((ev.problem.golden_end_time * 2) + 1_000)
  in
  let t0 = Unix.gettimeofday () in
  match
    Sim.Simulate.run ~max_steps ~max_time ~check_races:ev.cfg.check_races
      ~backend:ev.cfg.backend design ev.problem.spec
  with
  | Error (Sim.Simulate.Elab_failure msg) ->
      {
        fitness = 0.;
        trace = [];
        status = Compile_error msg;
        races = 0;
        sim_backend = "";
        sim_seconds = 0.;
      }
  | Ok r -> (
      let sim_seconds = Unix.gettimeofday () -. t0 in
      let sim_backend = Sim.Simulate.backend_used_to_string r.backend_used in
      let races = List.length r.races in
      match r.outcome with
      | Sim.Engine.Finished | Sim.Engine.Quiescent ->
          {
            fitness =
              Fitness.fitness ~phi:ev.cfg.phi ~expected:ev.problem.oracle
                ~actual:r.trace;
            trace = r.trace;
            status = Simulated;
            races;
            sim_backend;
            sim_seconds;
          }
      | Sim.Engine.Time_limit_reached ->
          (* Score whatever trace was produced; a looping mutant is
             still penalized by its missing samples. *)
          {
            fitness =
              Fitness.fitness ~phi:ev.cfg.phi ~expected:ev.problem.oracle
                ~actual:r.trace;
            trace = r.trace;
            status = Sim_diverged "time limit";
            races;
            sim_backend;
            sim_seconds;
          }
      | Sim.Engine.Budget_exceeded m ->
          {
            fitness = 0.;
            trace = [];
            status = Sim_diverged m;
            races;
            sim_backend;
            sim_seconds;
          })

(* Score one candidate without touching the cache or any counter. Reads
   only immutable state ([cfg], [problem], [original_size]), so concurrent
   calls from worker domains are safe. *)
let compute_unspanned (ev : t) (candidate : Verilog.Ast.module_decl) : outcome =
  if oversize ev candidate then oversize_outcome
  else begin
    let screened =
      if ev.cfg.screen_mutants then begin
        let t = if Obs.Trace.enabled () then Obs.Trace.begin_ () else 0 in
        let r = Verilog.Analysis.screen ~checks:ev.cfg.screen_checks candidate in
        if Obs.Trace.enabled () then
          Obs.Trace.complete ~cat:"eval" ~name:"screen.static" t;
        r
      end
      else None
    in
    let racy () =
      if ev.cfg.screen_races then begin
        let t = if Obs.Trace.enabled () then Obs.Trace.begin_ () else 0 in
        let r = Verilog.Race.screen ~hazards:Verilog.Race.all_hazards candidate in
        if Obs.Trace.enabled () then
          Obs.Trace.complete ~cat:"eval" ~name:"screen.race" t;
        r
      end
      else None
    in
    match screened with
    | Some msg ->
        (* Pre-simulation screening: the candidate is statically doomed,
           so reject it (scored like a compile error) without spending a
           simulation. *)
        {
          fitness = 0.;
          trace = [];
          status = Rejected_static msg;
          races = 0;
          sim_backend = "";
          sim_seconds = 0.;
        }
    | None ->
    match racy () with
    | Some msg ->
        (* Race screening: the candidate module contains a static race
           hazard; rejected without a simulation, under its own count. *)
        {
          fitness = 0.;
          trace = [];
          status = Rejected_racy msg;
          races = 0;
          sim_backend = "";
          sim_seconds = 0.;
        }
    | None -> simulate_candidate ev candidate
  end

(* [compute_unspanned] under a per-candidate trace span carrying the
   resulting status; runs on whatever domain called it, so the span lands
   on that worker's track. *)
let compute (ev : t) (candidate : Verilog.Ast.module_decl) : outcome =
  if not (Obs.Trace.enabled ()) then compute_unspanned ev candidate
  else begin
    let t = Obs.Trace.begin_ () in
    let o = compute_unspanned ev candidate in
    Obs.Trace.complete ~cat:"eval"
      ~args:[ ("status", Obs.Json.Str (status_label o.status)) ]
      ~name:"evaluate" t;
    o
  end

(* Counter accounting for a freshly computed (non-memoized) outcome,
   mirroring what the sequential path charges per status. *)
let account (ev : t) (o : outcome) =
  ev.runtime_races <- ev.runtime_races + o.races;
  (* Per-backend accounting. [sim_backend] is deterministic for a given
     design (compilation either succeeds or falls back identically on
     every domain), so these counters stay jobs-invariant like the rest
     of the commit-time accounting. A fallback run counts as an event
     simulation AND under [compiled_fallbacks]. *)
  (if o.sim_backend <> "" then
     if String.equal o.sim_backend "compiled" then begin
       ev.sims_compiled <- ev.sims_compiled + 1;
       ev.sim_seconds_compiled <- ev.sim_seconds_compiled +. o.sim_seconds;
       if Obs.Metrics.enabled () then Obs.Metrics.incr m_sims_compiled
     end
     else begin
       ev.sims_event <- ev.sims_event + 1;
       ev.sim_seconds_event <- ev.sim_seconds_event +. o.sim_seconds;
       if Obs.Metrics.enabled () then Obs.Metrics.incr m_sims_event;
       if String.starts_with ~prefix:"fallback:" o.sim_backend then begin
         ev.compiled_fallbacks <- ev.compiled_fallbacks + 1;
         if Obs.Metrics.enabled () then Obs.Metrics.incr m_compiled_fallbacks
       end
     end);
  (if Obs.Metrics.enabled () then begin
     if o.races > 0 then Obs.Metrics.add m_runtime_races o.races;
     match o.status with
     | Simulated -> Obs.Metrics.incr m_simulated
     | Compile_error _ -> Obs.Metrics.incr m_compile_error
     | Sim_diverged _ -> Obs.Metrics.incr m_sim_diverged
     | Rejected_static _ -> Obs.Metrics.incr m_rejected_static
     | Rejected_oversize -> Obs.Metrics.incr m_rejected_oversize
     | Rejected_racy _ -> Obs.Metrics.incr m_rejected_racy
     | Skipped_dead_edit -> () (* accounted at the lane site *)
   end);
  match o.status with
  | Rejected_static _ -> ev.static_rejects <- ev.static_rejects + 1
  | Rejected_racy _ -> ev.racy_rejects <- ev.racy_rejects + 1
  | Rejected_oversize -> ev.oversize_rejects <- ev.oversize_rejects + 1
  | Compile_error _ ->
      ev.probes <- ev.probes + 1;
      ev.compile_errors <- ev.compile_errors + 1
  | Simulated | Sim_diverged _ -> ev.probes <- ev.probes + 1
  | Skipped_dead_edit -> () (* [compute] never produces this status *)

(* --- Static pruning lanes -----------------------------------------------

   On a structural cache miss, two dataflow-derived lanes may still serve
   the lookup without a simulation:

   - semantic lane: the candidate's canonical form (Verilog.Canon) hashes
     onto an already-scored candidate's; fitness-equivalence is proved,
     so the donor's outcome is reused ([semantic_hits]).
   - dead-edit lane: erasing provably-dead code (Verilog.Dataflow) from
     the candidate yields the seed module's own erased skeleton, so the
     edit cannot change behaviour and the seed's fitness is reused under
     [Skipped_dead_edit] ([dead_edit_skips]).

   Lane decisions are made only on the main domain, sequentially, against
   monotonically-growing state (sem_tbl, cache) — a hit observed during
   [prepare] is therefore still a hit at [commit] time, which keeps
   results identical across [jobs] settings. Outcomes whose status is
   tied to the candidate's structure, not its semantics (the static and
   size screens), are never donated through the semantic lane. *)

type lane_probe =
  | Lane_sem of string * outcome (* semantic hash, donor outcome *)
  | Lane_dead of string * outcome (* semantic hash, seed outcome *)
  | Lane_none of string option (* semantic hash, when one was computed *)

let transferable = function
  | Simulated | Sim_diverged _ | Compile_error _ | Skipped_dead_edit -> true
  | Rejected_static _ | Rejected_oversize | Rejected_racy _ -> false

(* The two hashes a lane decision needs. Computing them is the lanes'
   entire cost (two AST walks), so they are computed at most once per
   candidate — [prepare] passes them through to [commit] — and the
   prune hash, only needed when the semantic lane misses, is skipped
   when the semantic table already holds the candidate's hash. *)
type lane_hashes = {
  lh_sem : string;
  lh_prune : string option; (* None when provably not needed *)
}

(* Main domain only: reads [sem_tbl] and accumulates [lane_seconds]. *)
let lane_hashes (ev : t) (candidate : Verilog.Ast.module_decl) :
    lane_hashes option =
  if (not ev.lanes_enabled) || oversize ev candidate then None
  else begin
    let t0 = Unix.gettimeofday () in
    let sem = Verilog.Canon.semantic_hash candidate in
    let prune =
      match ev.seed_prune_hash with
      | Some _ when not (Hashtbl.mem ev.sem_tbl sem) ->
          Some (Verilog.Dataflow.prune_hash candidate)
      | _ -> None
    in
    ev.lane_seconds <- ev.lane_seconds +. (Unix.gettimeofday () -. t0);
    Some { lh_sem = sem; lh_prune = prune }
  end

(* Read-only lane probe over precomputed hashes: pure table lookups.
   Callers on the main domain only. *)
let lane_probe (ev : t) (key : string) (h : lane_hashes option) : lane_probe =
  match h with
  | None -> Lane_none None
  | Some { lh_sem = sem; lh_prune } -> (
      match Hashtbl.find_opt ev.sem_tbl sem with
      | Some donor_key -> (
          match Hashtbl.find_opt ev.cache donor_key with
          | Some o -> Lane_sem (sem, o)
          | None -> Lane_none (Some sem))
      | None -> (
          match (ev.seed_prune_hash, lh_prune) with
          | Some sh, Some ph
            when (not (String.equal key ev.seed_key)) && String.equal ph sh
            -> (
              match Hashtbl.find_opt ev.cache ev.seed_key with
              | Some seed_o
                when (match seed_o.status with
                     | Simulated | Sim_diverged _ -> true
                     | _ -> false) ->
                  Lane_dead (sem, seed_o)
              | _ -> Lane_none (Some sem))
          | _ -> Lane_none (Some sem)))

(* Under [cfg.check_pruning], every lane decision is double-checked
   against the reference evaluation it claims to predict: the candidate
   is simulated anyway (bypassing the structural screens — the lanes
   prove equivalence against the simulator, not the screen heuristics)
   and the fitness must match exactly. *)
let verify_lane (ev : t) (candidate : Verilog.Ast.module_decl) ~lane
    (served : outcome) : unit =
  if ev.cfg.check_pruning then begin
    let actual = simulate_candidate ev candidate in
    if not (Float.equal served.fitness actual.fitness) then
      failwith
        (Printf.sprintf
           "check-pruning: %s lane served fitness %.9f but simulation \
            scored %.9f (%s)"
           lane served.fitness actual.fitness (status_label actual.status))
  end

(* Resolve a structural cache miss: consult the lanes over [hashes], fall
   back to [fallback] (a fresh or speculative compute). Owns all
   accounting for the miss; sequential, main domain only. *)
let resolve_miss (ev : t) (candidate : Verilog.Ast.module_decl)
    (key : string) ~(hashes : lane_hashes option)
    (fallback : unit -> outcome) : outcome =
  let store sem_opt (o : outcome) =
    Hashtbl.replace ev.cache key o;
    (match sem_opt with
    | Some sem when transferable o.status ->
        if not (Hashtbl.mem ev.sem_tbl sem) then
          Hashtbl.replace ev.sem_tbl sem key
    | _ -> ());
    o
  in
  match lane_probe ev key hashes with
  | Lane_sem (sem, donor) ->
      ev.semantic_hits <- ev.semantic_hits + 1;
      if Obs.Metrics.enabled () then Obs.Metrics.incr m_semantic_hits;
      verify_lane ev candidate ~lane:"semantic" donor;
      store (Some sem) donor
  | Lane_dead (sem, seed_o) ->
      ev.dead_edit_skips <- ev.dead_edit_skips + 1;
      if Obs.Metrics.enabled () then Obs.Metrics.incr m_dead_edit_skips;
      let o = { seed_o with status = Skipped_dead_edit } in
      verify_lane ev candidate ~lane:"dead-edit" o;
      store (Some sem) o
  | Lane_none sem_opt ->
      let outcome = fallback () in
      account ev outcome;
      store sem_opt outcome

let eval_module (ev : t) (candidate : Verilog.Ast.module_decl) : outcome =
  ev.lookups <- ev.lookups + 1;
  if Obs.Metrics.enabled () then Obs.Metrics.incr m_lookups;
  let key = key_of ev.cfg candidate in
  match Hashtbl.find_opt ev.cache key with
  | Some o ->
      if Obs.Metrics.enabled () then Obs.Metrics.incr m_memo_hits;
      o
  | None ->
      resolve_miss ev candidate key ~hashes:(lane_hashes ev candidate)
        (fun () -> compute ev candidate)

let eval_patch (ev : t) (original : Verilog.Ast.module_decl) (p : Patch.t) :
    outcome =
  eval_module ev (Patch.apply original p)

(* Per-signal attribution of an outcome's fitness against the problem's
   oracle, under the configured phi — the breakdown behind the journal's
   [attribution] records. *)
let attribution (ev : t) (o : outcome) : (string * Fitness.signal_score) list =
  Fitness.score_by_signal ~phi:ev.cfg.phi ~expected:ev.problem.oracle
    ~actual:o.trace

(* --- Batched evaluation over a domain pool ------------------------------ *)

type prepared = {
  ev : t;
  candidates : Verilog.Ast.module_decl array;
  keys : string array;
  computed : (string, outcome) Hashtbl.t;
      (* speculative results for keys that were cache misses at prepare
         time; empty on the sequential path *)
  hashes : (string, lane_hashes option) Hashtbl.t;
      (* lane hashes computed while screening the batch, so [commit] does
         not hash the same candidate a second time; empty on the
         sequential path *)
}

let prepare (ev : t) ~(pool : Pool.t)
    (candidates : Verilog.Ast.module_decl array) : prepared =
  let t_prep = if Obs.Trace.enabled () then Obs.Trace.begin_ () else 0 in
  let keys = Array.map (key_of ev.cfg) candidates in
  let computed = Hashtbl.create (Array.length candidates) in
  let hashes = Hashtbl.create (Array.length candidates) in
  if Pool.size pool > 1 then begin
    (* First occurrence of each un-cached key gets scored; duplicates and
       cache hits are resolved at commit time, exactly as the sequential
       path would. Keys the static lanes already serve are not scored
       either: lane state only grows, so a hit probed here is still a hit
       at commit time (the reverse miss merely wastes a speculation). *)
    let to_run = ref [] in
    Array.iteri
      (fun i key ->
        if
          (not (Hashtbl.mem ev.cache key))
          && not (Hashtbl.mem hashes key)
        then begin
          let h = lane_hashes ev candidates.(i) in
          Hashtbl.replace hashes key h;
          match lane_probe ev key h with
          | Lane_sem _ | Lane_dead _ -> ()
          | Lane_none _ ->
              Hashtbl.replace computed key oversize_outcome
                (* claimed; overwritten below *);
              to_run := (key, candidates.(i)) :: !to_run
        end)
      keys;
    let batch = Array.of_list (List.rev !to_run) in
    let outcomes = Pool.map pool (fun (_, c) -> compute ev c) batch in
    Array.iteri
      (fun j (key, _) -> Hashtbl.replace computed key outcomes.(j))
      batch
  end;
  if Obs.Trace.enabled () then
    Obs.Trace.complete ~cat:"eval"
      ~args:
        [
          ("batch", Obs.Json.Int (Array.length candidates));
          ("speculated", Obs.Json.Int (Hashtbl.length computed));
        ]
      ~name:"eval.prepare_batch" t_prep;
  { ev; candidates; keys; computed; hashes }

(* Commit candidate [i]: byte-for-byte the accounting of [eval_module],
   with the simulation replaced by the speculative result when one was
   prepared. On a pool of size 1 nothing was prepared, so this IS
   [eval_module]. Commit order defines the sequential semantics: callers
   must commit in batch index order and may stop early (un-committed
   speculative work is discarded, leaving cache and counters exactly as a
   sequential run would). *)
let commit (p : prepared) (i : int) : outcome =
  let ev = p.ev in
  ev.lookups <- ev.lookups + 1;
  if Obs.Metrics.enabled () then Obs.Metrics.incr m_lookups;
  let key = p.keys.(i) in
  match Hashtbl.find_opt ev.cache key with
  | Some o ->
      if Obs.Metrics.enabled () then Obs.Metrics.incr m_memo_hits;
      o
  | None ->
      let hashes =
        match Hashtbl.find_opt p.hashes key with
        | Some h -> h
        | None -> lane_hashes ev p.candidates.(i)
      in
      resolve_miss ev p.candidates.(i) key ~hashes (fun () ->
          match Hashtbl.find_opt p.computed key with
          | Some o -> o
          | None -> compute ev p.candidates.(i))
