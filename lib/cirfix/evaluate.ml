(* Candidate evaluation: materialize a patch, simulate the design under the
   instrumented testbench, and score it against the oracle. Evaluations are
   memoized on the materialized source (distinct patches frequently
   collapse to the same program). *)

type status =
  | Simulated (* ran to completion (or quiesced) *)
  | Compile_error of string (* elaboration failed: the "does not compile" case *)
  | Sim_diverged of string (* budget blown or time limit: fitness 0 *)
  | Rejected_static of string
    (* the pre-simulation screener proved the mutant doomed (e.g. a
       zero-delay combinational loop): scored like a compile error, but
       the simulation budget is never touched *)

type outcome = {
  fitness : float;
  trace : Sim.Recorder.trace;
  status : status;
}

type t = {
  problem : Problem.t;
  cfg : Config.t;
  original_size : int; (* node count of the unpatched module *)
  cache : (string, outcome) Hashtbl.t;
  mutable probes : int; (* simulations actually run *)
  mutable lookups : int; (* total evaluations requested *)
  mutable compile_errors : int; (* non-memoized compile failures *)
  mutable static_rejects : int; (* non-memoized screener rejections *)
}

let create (cfg : Config.t) (problem : Problem.t) : t =
  {
    problem;
    cfg;
    original_size =
      Verilog.Ast_utils.module_size (Problem.target_module problem);
    cache = Hashtbl.create 256;
    probes = 0;
    lookups = 0;
    compile_errors = 0;
    static_rejects = 0;
  }

let eval_module (ev : t) (candidate : Verilog.Ast.module_decl) : outcome =
  ev.lookups <- ev.lookups + 1;
  (* Bloated candidates (runaway insertion growth) are rejected outright,
     like mutants that fail to compile. *)
  if Verilog.Ast_utils.module_size candidate > (20 * ev.original_size) + 512
  then (
    ev.compile_errors <- ev.compile_errors + 1;
    { fitness = 0.; trace = []; status = Compile_error "candidate too large" })
  else begin
  let key = Digest.string (Verilog.Pp.module_to_string candidate) in
  match Hashtbl.find_opt ev.cache key with
  | Some o -> o
  | None -> (
      let screened =
        if ev.cfg.screen_mutants then
          Verilog.Analysis.screen ~checks:ev.cfg.screen_checks candidate
        else None
      in
      match screened with
      | Some msg ->
          (* Pre-simulation screening: the candidate is statically doomed,
             so reject it (scored like a compile error) without spending a
             simulation. Rejections are memoized like every other outcome. *)
          ev.static_rejects <- ev.static_rejects + 1;
          let outcome =
            { fitness = 0.; trace = []; status = Rejected_static msg }
          in
          Hashtbl.replace ev.cache key outcome;
          outcome
      | None ->
      ev.probes <- ev.probes + 1;
      let design = Problem.with_candidate ev.problem candidate in
      (* Candidates get a budget proportional to the golden run: a mutant
         spinning in a zero-delay loop is cut off quickly instead of
         burning the whole per-candidate ceiling. *)
      let max_steps =
        min ev.cfg.max_sim_steps ((ev.problem.golden_steps * 10) + 5_000)
      in
      let max_time =
        min ev.cfg.max_sim_time ((ev.problem.golden_end_time * 2) + 1_000)
      in
      let outcome =
        match Sim.Simulate.run ~max_steps ~max_time design ev.problem.spec with
        | Error (Sim.Simulate.Elab_failure msg) ->
            ev.compile_errors <- ev.compile_errors + 1;
            { fitness = 0.; trace = []; status = Compile_error msg }
        | Ok r -> (
            match r.outcome with
            | Sim.Engine.Finished | Sim.Engine.Quiescent ->
                {
                  fitness =
                    Fitness.fitness ~phi:ev.cfg.phi
                      ~expected:ev.problem.oracle ~actual:r.trace;
                  trace = r.trace;
                  status = Simulated;
                }
            | Sim.Engine.Time_limit_reached ->
                (* Score whatever trace was produced; a looping mutant is
                   still penalized by its missing samples. *)
                {
                  fitness =
                    Fitness.fitness ~phi:ev.cfg.phi
                      ~expected:ev.problem.oracle ~actual:r.trace;
                  trace = r.trace;
                  status = Sim_diverged "time limit";
                }
            | Sim.Engine.Budget_exceeded m ->
                { fitness = 0.; trace = []; status = Sim_diverged m })
      in
      Hashtbl.replace ev.cache key outcome;
      outcome)
  end

let eval_patch (ev : t) (original : Verilog.Ast.module_decl) (p : Patch.t) :
    outcome =
  eval_module ev (Patch.apply original p)
