(** The main CirFix repair loop (paper Algorithm 1): genetic programming
    over repair patches with tournament selection, elitism, repair
    templates, mutation and crossover, per-parent re-localization, and
    delta-debugging minimization of the first plausible repair found. *)

type candidate = { patch : Patch.t; outcome : Evaluate.outcome }

type generation_stats = {
  gen : int;
  best_fitness : float;
  mean_fitness : float;
  probes_so_far : int;
  lookups_so_far : int;  (** evaluations requested so far, memoized or not *)
  memo_hits_so_far : int;  (** lookups absorbed by the memo cache so far *)
}

type result = {
  repaired : candidate option;  (** first plausible repair, un-minimized *)
  minimized : Patch.t option;  (** one-minimal repair patch *)
  repaired_module : Verilog.Ast.module_decl option;
  generations : generation_stats list;  (** oldest first *)
  probes : int;  (** fitness evaluations (simulations actually run) *)
  lookups : int;  (** evaluations requested, memoized or not *)
  memo_hits : int;  (** evaluations absorbed by the memo cache *)
  compile_errors : int;  (** mutants that failed elaboration *)
  static_rejects : int;
      (** mutants rejected by the pre-simulation static screener; these
          never touch the simulation budget *)
  oversize_rejects : int;
      (** mutants rejected for implausible size without simulation *)
  racy_rejects : int;
      (** mutants rejected by the static race screen ([cfg.screen_races])
          without simulation *)
  runtime_races : int;
      (** dynamic races observed across all candidate simulations
          ([cfg.check_races]) *)
  semantic_hits : int;
      (** evaluations folded onto a semantically-equivalent, already-scored
          candidate ({!Verilog.Canon}) without simulating *)
  dead_edit_skips : int;
      (** candidates whose edit was proved dead ({!Verilog.Dataflow}); the
          seed's fitness was reused without simulating *)
  lane_seconds : float;
      (** wall time spent inside the static pruning lanes (canonical and
          prune hashing plus table probes) — the analysis-overhead figure
          reported by the [dataflow-prune] bench artifact; not journaled *)
  sims_event : int;
      (** simulations that ran on the event engine, including fallbacks
          from a requested compilation *)
  sims_compiled : int;
      (** simulations that ran on the compiled levelized backend *)
  compiled_fallbacks : int;
      (** simulations where compilation was requested but the design fell
          back to the event engine; a subset of [sims_event] *)
  sim_seconds_event : float;
      (** cumulative in-simulator wall time on the event engine (timing:
          varies run to run, never journaled) *)
  sim_seconds_compiled : float;
      (** cumulative in-simulator wall time on the compiled backend
          (timing: varies run to run, never journaled) *)
  mutants_generated : int;
  wall_seconds : float;
  initial_fitness : float;  (** fitness of the unpatched faulty design *)
  sliced : bool;
      (** slice-based repair actually engaged ([cfg.slice] and the slicer
          found a strictly smaller exact slice); when false under
          [cfg.slice], the run silently fell back to whole-design repair *)
  slice_sims : int;
      (** candidate simulations that ran on the sliced design (equals
          [probes] when [sliced], 0 otherwise) *)
  stitched_verifies : int;
      (** slice-plausible candidates stitched back into the whole design
          and re-verified on the full oracle — the slicing acceptance
          gate; includes the winners and any slice-only false positives
          it rejected *)
}

(** Run one seeded repair trial. Terminates at a plausible repair (fitness
    1.0), or when generations, probes, or wall-clock budget are exhausted.
    [on_generation] observes progress. Candidate batches are evaluated
    across [cfg.jobs] domains; for a fixed seed the result (patch, probes,
    generation stats) is the same for every [jobs] value, provided the
    wall-clock budget does not bind. *)
val repair :
  ?on_generation:(generation_stats -> unit) -> Config.t -> Problem.t -> result
