(* Repair patches: each program variant is a sequence of AST edits
   parameterized by node numbers (paper Sec. 3). Edits embed the source
   fragment to insert/replace, so a patch applies deterministically to the
   original module regardless of what earlier edits did; an edit whose
   target vanished (e.g. after a delete) is a no-op, as in GenProg-style
   patch representations. *)

open Verilog.Ast

type edit =
  | Replace of id * stmt (* replace statement [id] with the fragment *)
  | Insert of id * stmt (* insert the fragment after statement [id] *)
  | Delete of id
  | Template of Templates.t * id * string option (* template, target, signal *)

type t = edit list

let edit_to_string = function
  | Replace (id, s) ->
      Printf.sprintf "replace(%d, %s)" id
        (String.map (function '\n' -> ' ' | c -> c) (Verilog.Pp.stmt_to_string s))
  | Insert (id, s) ->
      Printf.sprintf "insert-after(%d, %s)" id
        (String.map (function '\n' -> ' ' | c -> c) (Verilog.Pp.stmt_to_string s))
  | Delete id -> Printf.sprintf "delete(%d)" id
  | Template (tpl, id, signal) ->
      Printf.sprintf "template(%s, %d%s)" (Templates.to_string tpl) id
        (match signal with None -> "" | Some s -> ", " ^ s)

let to_string (p : t) =
  if p = [] then "(empty patch)"
  else String.concat "; " (List.map edit_to_string p)

(* Apply one edit; [None] when the target id is absent. *)
let apply_edit (m : module_decl) (edit : edit) : module_decl option =
  match edit with
  | Replace (target, fragment) ->
      Verilog.Ast_utils.replace_stmt m ~target ~replacement:fragment
  | Insert (target, fragment) ->
      Verilog.Ast_utils.insert_after m ~target ~stmt:fragment
  | Delete target -> Verilog.Ast_utils.delete_stmt m ~target
  | Template (tpl, target, signal) -> Templates.apply tpl ?signal m ~target

(* Apply a whole patch to the original module. Edits that no longer apply
   are skipped. *)
let apply (original : module_decl) (p : t) : module_decl =
  List.fold_left
    (fun m edit ->
      match apply_edit m edit with Some m' -> m' | None -> m)
    original p

(* Structural key used to cache fitness evaluations: two patches that
   materialize to the same program are the same candidate. Hashes the AST
   directly (node tags and operands, ignoring node ids) rather than
   pretty-printing the module. *)
let digest (original : module_decl) (p : t) : string =
  Verilog.Ast_utils.structural_hash (apply original p)
