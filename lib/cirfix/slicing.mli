(** Slice-based repair support: bridges {!Verilog.Slice} into the repair
    engines ({!Gp}, {!Brute_force}).

    {!prepare} derives a sliced repair problem from a whole-design one:
    the backward cone of the mismatching outputs is extracted as a
    standalone module, the testbench instance is rewired to it, and the
    oracle is restricted to the slice's outputs. Mutation, localization
    and per-candidate simulation then run on the slice, which is strictly
    smaller — {!prepare} returns [None] whenever slicing cannot help
    (target is not the DUT module, or the cone covers the whole design),
    and the engine falls back to whole-design repair.

    Soundness rests on two facts. First, the repair slice is {e exact}:
    it is closed under fan-in (no promoted cut points), so for a fixed
    testbench its in-cone outputs simulate byte-identically to the whole
    design — a candidate that repairs the slice's outputs is a genuine
    candidate, not an artifact of the cut. Second, every slice-plausible
    candidate is {e stitched} back into the whole module ({!stitch} —
    kept statements retain their node ids, so the patch applies
    unchanged) and re-verified against the full oracle by the caller
    before being reported. Stitched verification is the acceptance gate:
    slicing can only prune the search, never unsoundly accept. *)

type t = {
  plan : Verilog.Slice.plan;
  whole_target : Verilog.Ast.module_decl;  (** unsliced module under repair *)
  sliced : Problem.t;  (** the slice-substituted repair problem *)
  focus : Fault_loc.IdSet.t;
      (** node ids (statements and expressions) inside kept items that
          also lie in the forward cone of the seed fault-localization
          set — the backward/forward intersection. Engines intersect
          their mutation targets with this set when the intersection is
          nonempty; empty means "no restriction". *)
  mismatch : string list;  (** seed mismatch on the whole design, sorted *)
}

val prepare : Evaluate.t -> t option
(** [prepare whole_ev] slices [whole_ev.problem]. Simulates the seed
    through [whole_ev] (priming its memo cache for the stitched
    verifications that follow), seeds the cone with the mismatching
    output ports plus any outputs the testbench reads back (reactive
    stimulus), and extracts a backward-only slice. [None] when the
    problem's DUT instance is not the target module, the slice drops
    nothing, or slicing would promote cut points. *)

val stitch : t -> Patch.t -> Verilog.Ast.module_decl
(** Apply a slice-found patch to the whole module. *)

val journal_record : t -> (string * Obs.Json.t) list
(** The [slice] journal record: the plan's manifest (outputs, inputs,
    kept/dropped item ids, node and process counts, sizes, structural
    hash), deterministic for a fixed problem and seed. *)
