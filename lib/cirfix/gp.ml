(* The main CirFix loop (paper Algorithm 1): genetic programming over
   repair patches with tournament selection, elitism, repair templates,
   mutation, crossover, per-parent re-localization, and delta-debugging
   minimization of the winning patch.

   Each generation runs as propose-batch -> evaluate -> select. Proposal
   (every RNG draw: tournament picks, mutation choices, crossover) and
   candidate materialization happen sequentially on the main domain, so a
   fixed seed yields one mutant stream regardless of [cfg.jobs]; the
   materialized batch is then scored across a domain pool and committed in
   batch index order ("first plausible repair" = lowest index), which makes
   the result — patch, probe count, generation stats — independent of the
   parallelism degree.

   When a journal is open the loop additionally explains itself: a
   [localization] record for the original design (Alg. 2 output with
   suspiciousness weights and a source heatmap), an [attribution] record
   per generation (per-signal fitness breakdown of the best candidate), a
   [lineage] record reconstructing the winning patch's genealogy from
   per-candidate provenance (operator, target node, parent hashes), and a
   terminal [run_end] record so `tail -f` consumers can detect completion.
   All of it derives from sequentially-committed state, so the journal
   stays byte-identical across [jobs]. *)

type candidate = {
  patch : Patch.t;
  outcome : Evaluate.outcome;
}

type generation_stats = {
  gen : int;
  best_fitness : float;
  mean_fitness : float;
  probes_so_far : int;
  lookups_so_far : int;
  memo_hits_so_far : int;
}

type result = {
  repaired : candidate option; (* first plausible repair found *)
  minimized : Patch.t option;
  repaired_module : Verilog.Ast.module_decl option;
  generations : generation_stats list; (* oldest first *)
  probes : int; (* fitness evaluations (simulations) *)
  lookups : int; (* evaluations requested (memoized or not) *)
  memo_hits : int; (* evaluations absorbed by the memo cache *)
  compile_errors : int; (* mutants that failed elaboration *)
  static_rejects : int; (* mutants screened out before simulation *)
  oversize_rejects : int; (* mutants rejected for implausible size *)
  racy_rejects : int; (* mutants rejected by the static race screen *)
  runtime_races : int; (* dynamic races observed across all simulations *)
  semantic_hits : int; (* evaluations folded onto a semantic twin *)
  dead_edit_skips : int; (* provably-dead edits scored without simulating *)
  lane_seconds : float; (* time spent inside the static pruning lanes *)
  sims_event : int; (* simulations that ran on the event engine *)
  sims_compiled : int; (* simulations that ran on the compiled backend *)
  compiled_fallbacks : int; (* compiled requests that fell back to event *)
  sim_seconds_event : float; (* in-simulator wall time, event engine *)
  sim_seconds_compiled : float; (* in-simulator wall time, compiled *)
  mutants_generated : int;
  wall_seconds : float;
  initial_fitness : float;
  sliced : bool; (* slice-based repair actually engaged *)
  slice_sims : int; (* simulations that ran on the sliced design *)
  stitched_verifies : int; (* whole-design re-verifications of winners *)
}

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(* Tournament selection (paper Sec. 3.5): the fittest of [t] random picks.
   Fitness ties break toward shorter patches (parsimony pressure), which
   keeps the population from drifting into junk edits while the search has
   not yet found any gradient. *)
let better (a : candidate) (b : candidate) =
  a.outcome.fitness > b.outcome.fitness
  || (a.outcome.fitness = b.outcome.fitness
     && List.length a.patch < List.length b.patch)

(* Index into the population, so callers can look up per-candidate data
   (e.g. the precomputed structural hashes behind lineage tracking)
   without rehashing. Draw count and draw order are unchanged from the
   candidate-returning version — the mutant stream is seed-stable. *)
let tournament_idx rng (cfg : Config.t) (popn : candidate array) : int =
  let best = ref (Random.State.int rng (Array.length popn)) in
  for _ = 2 to cfg.tournament_size do
    let i = Random.State.int rng (Array.length popn) in
    if better popn.(i) popn.(!best) then best := i
  done;
  !best

(* --- Provenance and lineage ----------------------------------------------

   Every proposed candidate carries how it was made: the operator (a
   template name, a mutation kind, or crossover), the AST node it targeted,
   and the structural hashes of its parent(s). Provenance is recorded —
   only while a journal is open — into a table keyed by the candidate's
   materialized structural hash; at the end of a successful run the
   winner's genealogy is reconstructed by walking parent hashes back to the
   seed and emitted as a [lineage] journal record. Distinct patches that
   materialize to the same program share one node (first proposal wins),
   mirroring how the memo cache shares their evaluation. *)

type prov = {
  p_op : string; (* "seed" | "delete" | "insert" | "replace"
                    | "template:<name>" | "crossover" *)
  p_target : int option; (* AST node id the edit targeted *)
  p_parents : string list; (* structural hashes of the parent(s) *)
}

type lineage_node = {
  l_op : string;
  l_target : int option;
  l_parents : string list;
  l_gen : int;
  l_fitness : float;
}

let prov_of_edit ~(parents : string list) (e : Patch.edit) : prov =
  match e with
  | Patch.Delete id -> { p_op = "delete"; p_target = Some id; p_parents = parents }
  | Patch.Insert (id, _) ->
      { p_op = "insert"; p_target = Some id; p_parents = parents }
  | Patch.Replace (id, _) ->
      { p_op = "replace"; p_target = Some id; p_parents = parents }
  | Patch.Template (tpl, id, _) ->
      {
        p_op = "template:" ^ Templates.to_string tpl;
        p_target = Some id;
        p_parents = parents;
      }

let record_lineage (tbl : (string, lineage_node) Hashtbl.t) ~(hash : string)
    ~(prov : prov) ~(gen : int) ~(fitness : float) : unit =
  if not (Hashtbl.mem tbl hash) then
    Hashtbl.add tbl hash
      {
        l_op = prov.p_op;
        l_target = prov.p_target;
        l_parents = prov.p_parents;
        l_gen = gen;
        l_fitness = fitness;
      }

(* Genealogy of [winner]: every lineage node reachable through parent
   hashes, sorted by (generation, hash) for deterministic emission. *)
let genealogy (tbl : (string, lineage_node) Hashtbl.t) (winner : string) :
    (string * lineage_node) list =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec walk hash =
    if not (Hashtbl.mem seen hash) then begin
      Hashtbl.add seen hash ();
      match Hashtbl.find_opt tbl hash with
      | None -> () (* parent predates tracking; genealogy stops here *)
      | Some node ->
          acc := (hash, node) :: !acc;
          List.iter walk node.l_parents
    end
  in
  walk winner;
  List.sort
    (fun (h1, n1) (h2, n2) -> compare (n1.l_gen, h1) (n2.l_gen, h2))
    !acc

let journal_lineage ~(winner : string)
    (nodes : (string * lineage_node) list) : unit =
  let nodes =
    nodes
    |> List.map (fun (hash, n) ->
           Obs.Json.Obj
             [
               ("hash", Obs.Json.Str hash);
               ("op", Obs.Json.Str n.l_op);
               ( "target",
                 match n.l_target with
                 | None -> Obs.Json.Null
                 | Some id -> Obs.Json.Int id );
               ( "parents",
                 Obs.Json.List
                   (List.map (fun h -> Obs.Json.Str h) n.l_parents) );
               ("gen", Obs.Json.Int n.l_gen);
               ("fitness", Obs.Json.Float n.l_fitness);
             ])
  in
  Obs.Journal.emit
    [
      ("type", Obs.Json.Str "lineage");
      ("winner", Obs.Json.Str winner);
      ("nodes", Obs.Json.List nodes);
    ]

(* --- Search funnel --------------------------------------------------------

   Per-operator funnel counters: every proposal is counted through
   proposed -> screened/pruned -> simulated -> survived selection ->
   in-winner-lineage, keyed by the provenance operator string ("seed",
   "delete", "insert", "replace", "template:<name>", "crossover", plus
   the accounting pseudo-operators "setup" and "minimize" for evaluator
   work outside the proposal stream). All bumps happen on sequentially-
   committed state, so the funnel is byte-identical across [jobs].

   Stage semantics (each evaluated proposal lands in exactly one, by
   construction of the evaluator's disposition counters):
   - proposed: the operator emitted this candidate;
   - evaluated: the candidate was committed (early stop discards the rest);
   - screened: rejected before simulation (compile / static / oversize /
     race screens);
   - pruned: served without a fresh simulation (memo hit, semantic twin,
     provably-dead edit);
   - simulated: a fresh simulation was paid for it;
   - survived: carried forward by elitism (one bump per candidate per
     generation survived);
   - in_lineage: the candidate appears in the winner's genealogy.

   Summed over operators, evaluated = run_end.evals, simulated =
   run_end.probes, screened = compile_errors + static_rejects +
   oversize_rejects + racy_rejects, and pruned = memo_hits +
   semantic_hits + dead_edit_skips — the reconciliation the funnel test
   checks. (Under [check_pruning] the lanes simulate anyway, so a single
   candidate may count in both pruned and simulated; the per-counter sums
   above still hold.) *)

type funnel_row = {
  mutable f_proposed : int;
  mutable f_evaluated : int;
  mutable f_screened : int;
  mutable f_pruned : int;
  mutable f_simulated : int;
  mutable f_survived : int;
  mutable f_lineage : int;
}

type funnel = {
  tbl : (string, funnel_row) Hashtbl.t;
  mutable snap_lookups : int;
  mutable snap_probes : int;
  mutable snap_screened : int;
  mutable snap_pruned : int;
}

let funnel_get (f : funnel) (op : string) : funnel_row =
  match Hashtbl.find_opt f.tbl op with
  | Some r -> r
  | None ->
      let r =
        {
          f_proposed = 0;
          f_evaluated = 0;
          f_screened = 0;
          f_pruned = 0;
          f_simulated = 0;
          f_survived = 0;
          f_lineage = 0;
        }
      in
      Hashtbl.add f.tbl op r;
      r

let funnel_screened (ev : Evaluate.t) =
  ev.compile_errors + ev.static_rejects + ev.oversize_rejects + ev.racy_rejects

let funnel_pruned (ev : Evaluate.t) =
  Evaluate.memo_hits ev + ev.semantic_hits + ev.dead_edit_skips

(* Remember the evaluator counters; the next [funnel_charge] attributes
   whatever they advanced by to one operator row. *)
let funnel_snap (f : funnel) (ev : Evaluate.t) : unit =
  f.snap_lookups <- ev.lookups;
  f.snap_probes <- ev.probes;
  f.snap_screened <- funnel_screened ev;
  f.snap_pruned <- funnel_pruned ev

(* Charge the counter movement since the last snapshot to [op], then
   re-snapshot. Deltas are 0/1 per commit; the "setup" and "minimize"
   rows charge whole evaluation phases in one aggregate step. *)
let funnel_charge (f : funnel) (ev : Evaluate.t) (op : string) : unit =
  let r = funnel_get f op in
  r.f_evaluated <- r.f_evaluated + (ev.lookups - f.snap_lookups);
  r.f_simulated <- r.f_simulated + (ev.probes - f.snap_probes);
  r.f_screened <- r.f_screened + (funnel_screened ev - f.snap_screened);
  r.f_pruned <- r.f_pruned + (funnel_pruned ev - f.snap_pruned);
  funnel_snap f ev

let funnel_rows (f : funnel) : (string * funnel_row) list =
  Hashtbl.fold (fun op r acc -> (op, r) :: acc) f.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let funnel_total (f : funnel) (field : funnel_row -> int) : int =
  Hashtbl.fold (fun _ r acc -> acc + field r) f.tbl 0

let journal_funnel (f : funnel) : unit =
  let operators =
    funnel_rows f
    |> List.map (fun (op, r) ->
           Obs.Json.Obj
             [
               ("op", Obs.Json.Str op);
               ("proposed", Obs.Json.Int r.f_proposed);
               ("evaluated", Obs.Json.Int r.f_evaluated);
               ("screened", Obs.Json.Int r.f_screened);
               ("pruned", Obs.Json.Int r.f_pruned);
               ("simulated", Obs.Json.Int r.f_simulated);
               ("survived", Obs.Json.Int r.f_survived);
               ("in_lineage", Obs.Json.Int r.f_lineage);
             ])
  in
  Obs.Journal.emit
    [
      ("type", Obs.Json.Str "funnel"); ("operators", Obs.Json.List operators);
    ]

(* --- Journal records ------------------------------------------------------ *)

(* Journal record for one finished generation. Everything here is derived
   from state the determinism contract already covers (population, memo
   counters), so the journal is byte-identical across [jobs] — except
   [elapsed_s], which consumers must strip before comparing. Diversity is
   the number of structurally distinct programs in the population; the
   hashing is only paid when a journal is open. *)
let journal_generation (ev : Evaluate.t) (original : Verilog.Ast.module_decl)
    (popn : candidate array) ~(gen : int) ~(mutants : int) ~(found : bool)
    ~(elapsed : float) : unit =
  let fits = Array.map (fun c -> c.outcome.fitness) popn in
  Array.sort compare fits;
  let n = Array.length fits in
  let fl = Array.to_list fits in
  let diversity =
    let seen = Hashtbl.create (Array.length popn) in
    Array.iter
      (fun c ->
        Hashtbl.replace seen
          (Verilog.Ast_utils.structural_hash (Patch.apply original c.patch))
          ())
      popn;
    Hashtbl.length seen
  in
  Obs.Journal.emit
    [
      ("type", Obs.Json.Str "generation");
      ("gen", Obs.Json.Int gen);
      ("best", Obs.Json.Float (if found then 1.0 else if n = 0 then 0. else fits.(n - 1)));
      ("median", Obs.Json.Float (Stats.median fl));
      ("mean", Obs.Json.Float (mean fl));
      ("worst", Obs.Json.Float (if n = 0 then 0. else fits.(0)));
      ("diversity", Obs.Json.Int diversity);
      ("population", Obs.Json.Int n);
      ("mutants", Obs.Json.Int mutants);
      ("probes", Obs.Json.Int ev.probes);
      ("lookups", Obs.Json.Int ev.lookups);
      ("memo_hits", Obs.Json.Int (Evaluate.memo_hits ev));
      ("compile_errors", Obs.Json.Int ev.compile_errors);
      ("static_rejects", Obs.Json.Int ev.static_rejects);
      ("oversize_rejects", Obs.Json.Int ev.oversize_rejects);
      ("racy_rejects", Obs.Json.Int ev.racy_rejects);
      ("semantic_hits", Obs.Json.Int ev.semantic_hits);
      ("dead_edit_skips", Obs.Json.Int ev.dead_edit_skips);
      ("elapsed_s", Obs.Json.Float elapsed);
    ]

(* Per-signal fitness attribution of one candidate (paper Sec. 3.2, per
   output wire): which signals drag the score down, and from which sample
   timestamp onward. Emitted for the best candidate of each generation
   (and for the seed design as gen 0). *)
let journal_attribution (ev : Evaluate.t) (c : candidate) ~(gen : int) : unit =
  let signals =
    Evaluate.attribution ev c.outcome
    |> List.map (fun (name, (s : Fitness.signal_score)) ->
           Obs.Json.Obj
             [
               ("name", Obs.Json.Str name);
               ("sum", Obs.Json.Float s.s_sum);
               ("total", Obs.Json.Float s.s_total);
               ("fitness", Obs.Json.Float s.s_fitness);
               ( "first_divergence",
                 match s.first_divergence with
                 | None -> Obs.Json.Null
                 | Some t -> Obs.Json.Int t );
             ])
  in
  Obs.Journal.emit
    [
      ("type", Obs.Json.Str "attribution");
      ("gen", Obs.Json.Int gen);
      ("fitness", Obs.Json.Float c.outcome.fitness);
      ("status", Obs.Json.Str (Evaluate.status_label c.outcome.status));
      ("signals", Obs.Json.List signals);
    ]

(* Fault-localization export for the original design: the implicated node
   set with suspiciousness weights (1/round of implication) and the
   pretty-printed source with per-line heat, so a report can render the
   Alg. 2 heatmap without re-running the analysis. *)
let journal_localization (original : Verilog.Ast.module_decl)
    ~(mismatch : string list) : unit =
  let r = Fault_loc.localize original ~mismatch in
  let nodes =
    Fault_loc.IdMap.bindings r.rounds
    |> List.map (fun (id, round) ->
           Obs.Json.Obj
             [
               ("id", Obs.Json.Int id);
               ("round", Obs.Json.Int round);
               ("weight", Obs.Json.Float (Fault_loc.suspiciousness r id));
             ])
  in
  let source =
    Fault_loc.heat_lines original r
    |> List.map (fun (text, weight) ->
           Obs.Json.Obj
             [
               ("text", Obs.Json.Str text); ("weight", Obs.Json.Float weight);
             ])
  in
  Obs.Journal.emit
    [
      ("type", Obs.Json.Str "localization");
      ( "mismatch",
        Obs.Json.List (List.map (fun s -> Obs.Json.Str s) mismatch) );
      ("iterations", Obs.Json.Int r.iterations);
      ("implicated", Obs.Json.Int (Fault_loc.IdSet.cardinal r.fl));
      ("nodes", Obs.Json.List nodes);
      ("source", Obs.Json.List source);
    ]

(* Terminal record: emitted last so `tail -f` consumers can detect
   completion. [elapsed_s] is the run's wall time — a documented timing
   field, excluded (like the generation records') from the cross-[jobs]
   byte-equality contract; everything else stays byte-identical. *)
let journal_run_end (ev : Evaluate.t) ~(status : string) ~(elapsed : float)
    (extra : (string * Obs.Json.t) list) : unit =
  Obs.Journal.emit
    ([
       ("type", Obs.Json.Str "run_end");
       ("status", Obs.Json.Str status);
       ("elapsed_s", Obs.Json.Float elapsed);
       ("evals", Obs.Json.Int ev.lookups);
       ("probes", Obs.Json.Int ev.probes);
       ("memo_hits", Obs.Json.Int (Evaluate.memo_hits ev));
       ("compile_errors", Obs.Json.Int ev.compile_errors);
       ("static_rejects", Obs.Json.Int ev.static_rejects);
       ("oversize_rejects", Obs.Json.Int ev.oversize_rejects);
       ("racy_rejects", Obs.Json.Int ev.racy_rejects);
       ("semantic_hits", Obs.Json.Int ev.semantic_hits);
       ("dead_edit_skips", Obs.Json.Int ev.dead_edit_skips);
       ("runtime_races", Obs.Json.Int ev.runtime_races);
       ("sims_event", Obs.Json.Int ev.sims_event);
       ("sims_compiled", Obs.Json.Int ev.sims_compiled);
       ("compiled_fallbacks", Obs.Json.Int ev.compiled_fallbacks);
     ]
    @ extra)

(* --- The repair loop ------------------------------------------------------ *)

(* Fault-localize a parent: simulate (cached) and run Algorithm 2 against
   its own mismatch set — CirFix re-localizes per parent to support
   dependent multi-edit repairs (paper Sec. 3). [focus] is the slicing
   backward/forward intersection (Slicing.focus): when narrowing the
   localization to it leaves something, mutation targets shrink to the
   nodes both upstream of the mismatch and downstream of the suspicious
   set; when the intersection is empty the localization stands, so focus
   never empties the target set. *)
let localize_parent (ev : Evaluate.t) (original : Verilog.Ast.module_decl)
    (cfg : Config.t) ~(focus : Fault_loc.IdSet.t) (parent : candidate) :
    Verilog.Ast.module_decl * Verilog.Ast.stmt list * Fault_loc.IdSet.t =
  let m = Patch.apply original parent.patch in
  let narrow (stmts, fl) =
    if Fault_loc.IdSet.is_empty focus then (stmts, fl)
    else
      let stmts' =
        List.filter
          (fun (s : Verilog.Ast.stmt) -> Fault_loc.IdSet.mem s.sid focus)
          stmts
      in
      let fl' = Fault_loc.IdSet.inter fl focus in
      if stmts' = [] || Fault_loc.IdSet.is_empty fl' then (stmts, fl)
      else (stmts', fl')
  in
  if not cfg.use_fault_loc then (
    let stmts = Fault_loc.all_statements m in
    let stmts, fl =
      narrow
        ( stmts,
          Fault_loc.IdSet.of_list
            (List.map (fun (s : Verilog.Ast.stmt) -> s.sid) stmts) )
    in
    (m, stmts, fl))
  else (
    let mismatch =
      match parent.outcome.status with
      | Evaluate.Simulated | Evaluate.Sim_diverged _
      | Evaluate.Skipped_dead_edit ->
          (* A dead-edit skip carries the seed's trace, which is exactly
             the candidate's own behaviour (the edit was proved dead). *)
          Fitness.mismatched_signals ~expected:ev.problem.oracle
            ~actual:parent.outcome.trace
      | Evaluate.Compile_error _ | Evaluate.Rejected_static _
      | Evaluate.Rejected_oversize | Evaluate.Rejected_racy _ ->
          (* Nothing simulated: blame every recorded output. *)
          (match ev.problem.oracle with
          | [] -> []
          | s :: _ -> List.map fst s.values)
    in
    let r = Fault_loc.localize m ~mismatch in
    let fl_stmts = Fault_loc.fl_statements m r in
    (* An empty localization (e.g. mismatch names never assigned) would
       stall the search; widen to all statements as a fallback. *)
    if fl_stmts = [] then
      let stmts = Fault_loc.all_statements m in
      let stmts, fl =
        narrow
          ( stmts,
            Fault_loc.IdSet.of_list
              (List.map (fun (s : Verilog.Ast.stmt) -> s.sid) stmts) )
      in
      (m, stmts, fl)
    else
      let stmts, fl = narrow (fl_stmts, r.fl) in
      (m, stmts, fl))

let repair ?(on_generation : (generation_stats -> unit) option)
    (cfg : Config.t) (whole_problem : Problem.t) : result =
  let rng = Random.State.make [| cfg.seed |] in
  (* Slice-based repair: when enabled and the slicer finds a strictly
     smaller exact slice, the search (mutation, localization, candidate
     simulation) runs on the sliced problem; [whole_ev] then only scores
     the seed and re-verifies plausible winners stitched back into the
     whole design (the acceptance gate). When slicing cannot engage,
     [whole_ev] IS the search evaluator and nothing changes. *)
  let whole_ev = Evaluate.create cfg whole_problem in
  let slicing = if cfg.slice then Slicing.prepare whole_ev else None in
  let problem =
    match slicing with Some s -> s.Slicing.sliced | None -> whole_problem
  in
  let ev =
    match slicing with Some _ -> Evaluate.create cfg problem | None -> whole_ev
  in
  let focus =
    match slicing with
    | Some s -> s.Slicing.focus
    | None -> Fault_loc.IdSet.empty
  in
  let stitched = ref 0 in
  (* The acceptance gate: a slice-plausible patch counts as a repair only
     if the stitched whole design reaches fitness 1.0 on the full oracle.
     Runs at sequential commit time, so counters and the winning patch
     stay independent of [cfg.jobs]. *)
  let stitched_ok (patch : Patch.t) : bool =
    match slicing with
    | None -> true
    | Some s ->
        incr stitched;
        (Evaluate.eval_module whole_ev (Slicing.stitch s patch)).fitness >= 1.0
  in
  let original = Problem.target_module problem in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. cfg.max_wall_seconds in
  let mutants = ref 0 in
  let gen_stats = ref [] in
  let out_of_resources () =
    Unix.gettimeofday () > deadline || ev.probes >= cfg.max_probes
  in
  (* Lineage is journal-only state: the hashing it needs is paid only when
     a journal is open (the same rule [journal_generation]'s diversity
     count follows). The funnel follows the same gate: it is observable
     only through the journal, so it is tracked only while one is open. *)
  let lineage : (string, lineage_node) Hashtbl.t = Hashtbl.create 64 in
  let hash_of_mod = Verilog.Ast_utils.structural_hash in
  let track = Obs.Journal.enabled () in
  let funnel =
    {
      tbl = Hashtbl.create 16;
      snap_lookups = 0;
      snap_probes = 0;
      snap_screened = 0;
      snap_pruned = 0;
    }
  in
  (* Evaluator work that predates funnel tracking (a slice probe that fell
     back to the whole design leaves counters on [ev]) lands on a "setup"
     accounting row, so funnel sums still tile the run_end counters. *)
  if track && ev.lookups > 0 then begin
    let r = funnel_get funnel "setup" in
    r.f_proposed <- ev.lookups;
    funnel_charge funnel ev "setup"
  end
  else funnel_snap funnel ev;
  (* Operator of each population slot, parallel to [popn]; used to credit
     elitism survival to the operator that made the survivor. *)
  let popn_ops = ref (Array.make (max cfg.pop_size 1) "seed") in
  if Obs.Journal.enabled () then
    Obs.Journal.emit
      ([
         ("type", Obs.Json.Str "run");
         ("engine", Obs.Json.Str "gp");
         ("problem", Obs.Json.Str problem.name);
       ]
      @ Config.journal_fields cfg);
  if Obs.Journal.enabled () then
    Option.iter
      (fun s -> Obs.Journal.emit (Slicing.journal_record s))
      slicing;
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->

  let initial = { patch = []; outcome = Evaluate.eval_patch ev original [] } in
  if track then begin
    let r = funnel_get funnel "seed" in
    r.f_proposed <- r.f_proposed + 1;
    funnel_charge funnel ev "seed"
  end;
  let found =
    ref
      (if initial.outcome.fitness >= 1.0 && stitched_ok initial.patch then
         Some initial
       else None)
  in
  if Obs.Journal.enabled () then begin
    let mismatch =
      Fitness.mismatched_signals ~expected:ev.problem.oracle
        ~actual:initial.outcome.trace
    in
    journal_localization original ~mismatch;
    journal_attribution ev initial ~gen:0;
    record_lineage lineage ~hash:(hash_of_mod original)
      ~prov:{ p_op = "seed"; p_target = None; p_parents = [] }
      ~gen:0 ~fitness:initial.outcome.fitness
  end;

  (* seed_popn(C, popnSize): the population starts as copies of the faulty
     circuit (Alg. 1 line 1); generation 1 then explores pop_size fresh
     single edits around it. *)
  let popn = ref (Array.make (max cfg.pop_size 1) initial) in

  let gen = ref 0 in
  while !found = None && !gen < cfg.max_generations && not (out_of_resources ()) do
    incr gen;
    let t_gen = if Obs.Trace.enabled () then Obs.Trace.begin_ () else 0 in
    let t_gen_wall = Unix.gettimeofday () in
    (* Parent hashes for lineage, computed once per generation (journal
       open only); "" placeholders otherwise. *)
    let popn_hashes =
      if Obs.Journal.enabled () then
        Array.map (fun c -> hash_of_mod (Patch.apply original c.patch)) !popn
      else Array.map (fun _ -> "") !popn
    in
    (* Propose: all RNG draws and patch materialization, sequentially on
       the main domain. (The wall-clock guard mirrors the sequential
       loop's: a generation stops growing when the trial is out of time.) *)
    let t_propose = if Obs.Trace.enabled () then Obs.Trace.begin_ () else 0 in
    let proposals = ref [] in
    let child_count = ref 0 in
    while !child_count < cfg.pop_size && not (out_of_resources ()) do
      let pi = tournament_idx rng cfg !popn in
      let parent = (!popn).(pi) in
      let parents = [ popn_hashes.(pi) ] in
      let m, fl_stmts, fl = localize_parent ev original cfg ~focus parent in
      let children =
        if cfg.use_templates && Random.State.float rng 1.0 <= cfg.rt_threshold
        then
          (* Repair templates (Alg. 1 line 8). *)
          match Mutate.template_edit rng m ~fl with
          | Some e -> [ (parent.patch @ [ e ], prov_of_edit ~parents e) ]
          | None -> []
        else if Random.State.float rng 1.0 <= cfg.mut_threshold then
          match Mutate.mutate rng cfg m ~fl_stmts with
          | Some e -> [ (parent.patch @ [ e ], prov_of_edit ~parents e) ]
          | None -> []
        else (
          let pi2 = tournament_idx rng cfg !popn in
          let parent2 = (!popn).(pi2) in
          let cross_parents = [ popn_hashes.(pi); popn_hashes.(pi2) ] in
          let c1, c2 = Mutate.crossover rng parent.patch parent2.patch in
          let prov =
            { p_op = "crossover"; p_target = None; p_parents = cross_parents }
          in
          [ (c1, prov); (c2, prov) ])
      in
      List.iter
        (fun tagged ->
          incr child_count;
          if track then begin
            let r = funnel_get funnel (snd tagged).p_op in
            r.f_proposed <- r.f_proposed + 1
          end;
          proposals := tagged :: !proposals)
        children
    done;
    let tagged_batch = Array.of_list (List.rev !proposals) in
    let batch = Array.map fst tagged_batch in
    let mods = Array.map (Patch.apply original) batch in
    if Obs.Trace.enabled () then
      Obs.Trace.complete ~cat:"gp"
        ~args:[ ("proposals", Obs.Json.Int (Array.length batch)) ]
        ~name:"gp.propose" t_propose;
    (* Evaluate: score the batch across the pool, then select by committing
       in batch order with the sequential guards. Stopping at the first
       plausible repair (or on budget exhaustion) discards the remaining
       speculative work, so counters match a jobs=1 run exactly. *)
    let prepared = Evaluate.prepare ev ~pool mods in
    let t_select = if Obs.Trace.enabled () then Obs.Trace.begin_ () else 0 in
    let child_popn = ref [] in
    let child_ops = ref [] in
    Array.iteri
      (fun i patch ->
        if !found = None && not (out_of_resources ()) then (
          incr mutants;
          let c = { patch; outcome = Evaluate.commit prepared i } in
          if track then funnel_charge funnel ev (snd tagged_batch.(i)).p_op;
          if Obs.Journal.enabled () then
            record_lineage lineage ~hash:(hash_of_mod mods.(i))
              ~prov:(snd tagged_batch.(i)) ~gen:!gen ~fitness:c.outcome.fitness;
          if c.outcome.fitness >= 1.0 && stitched_ok c.patch then
            found := Some c;
          child_ops := (snd tagged_batch.(i)).p_op :: !child_ops;
          child_popn := c :: !child_popn))
      batch;
    if Obs.Trace.enabled () then
      Obs.Trace.complete ~cat:"gp" ~name:"gp.select" t_select;
    (* Elitism: carry the top e% of the previous generation forward. *)
    let elite_n =
      max 1 (int_of_float (cfg.elitism *. float_of_int cfg.pop_size))
    in
    let sorted = Array.copy !popn in
    Array.sort
      (fun a b ->
        match compare b.outcome.fitness a.outcome.fitness with
        | 0 -> compare (List.length a.patch) (List.length b.patch)
        | c -> c)
      sorted;
    let elites = Array.to_list (Array.sub sorted 0 (min elite_n (Array.length sorted))) in
    (* Credit each survivor's operator. Elites are physical members of the
       previous population, so an identity scan recovers each one's slot
       (and thus its operator) without re-sorting or rehashing. *)
    let elite_ops =
      if not track then []
      else
        List.map
          (fun e ->
            let op = ref "seed" in
            (try
               Array.iteri
                 (fun i c -> if c == e then (op := (!popn_ops).(i); raise Exit))
                 !popn
             with Exit -> ());
            let r = funnel_get funnel !op in
            r.f_survived <- r.f_survived + 1;
            !op)
          elites
    in
    let next = Array.of_list (elites @ !child_popn) in
    if Array.length next > 0 then begin
      popn := next;
      if track then
        (* [child_popn] is consed (reverse batch order); [child_ops] is
           consed identically, so the two lists stay slot-aligned. *)
        popn_ops := Array.of_list (elite_ops @ !child_ops)
    end;
    let fits = Array.to_list (Array.map (fun c -> c.outcome.fitness) !popn) in
    let stats =
      {
        gen = !gen;
        best_fitness =
          (match !found with
          | Some _ -> 1.0
          | None -> List.fold_left Float.max 0. fits);
        mean_fitness = mean fits;
        probes_so_far = ev.probes;
        lookups_so_far = ev.lookups;
        memo_hits_so_far = Evaluate.memo_hits ev;
      }
    in
    gen_stats := stats :: !gen_stats;
    if Obs.Journal.enabled () then begin
      journal_generation ev original !popn ~gen:!gen ~mutants:!mutants
        ~found:(!found <> None)
        ~elapsed:(Unix.gettimeofday () -. t_gen_wall);
      let best =
        Array.fold_left
          (fun acc c -> if better c acc then c else acc)
          (!popn).(0) !popn
      in
      journal_attribution ev best ~gen:!gen
    end;
    if Obs.Trace.enabled () then
      Obs.Trace.complete ~cat:"gp"
        ~args:
          [
            ("gen", Obs.Json.Int !gen);
            ("best", Obs.Json.Float stats.best_fitness);
          ]
        ~name:"gp.generation" t_gen;
    Option.iter (fun f -> f stats) on_generation
  done;

  let t_min = if Obs.Trace.enabled () then Obs.Trace.begin_ () else 0 in
  (* In slice mode, minimize against the WHOLE design: every ddmin probe
     then re-verifies on the full oracle, so the minimized patch repairs
     the whole module by construction, not just the slice. *)
  let minimized =
    Option.map
      (fun c ->
        match slicing with
        | None -> Minimize.minimize ev original c.patch
        | Some s -> Minimize.minimize whole_ev s.Slicing.whole_target c.patch)
      !found
  in
  if !found <> None && Obs.Trace.enabled () then
    Obs.Trace.complete ~cat:"gp" ~name:"gp.minimize" t_min;
  (* ddmin probes (non-slice mode: they run on [ev]) land on a "minimize"
     accounting row so the funnel still tiles the run_end counters. *)
  if track && ev.lookups > funnel.snap_lookups then begin
    let d = ev.lookups - funnel.snap_lookups in
    funnel_charge funnel ev "minimize";
    let r = funnel_get funnel "minimize" in
    r.f_proposed <- r.f_proposed + d
  end;
  if Obs.Journal.enabled () then begin
    (* Genealogy of the winner — or, when the search came up empty, of the
       best surviving candidate, which is what a user debugs next. *)
    let focus =
      match !found with
      | Some winner -> Some winner
      | None ->
          if Array.length !popn = 0 then None
          else
            Some
              (Array.fold_left
                 (fun acc c -> if better c acc then c else acc)
                 (!popn).(0) !popn)
    in
    (match focus with
    | Some c ->
        let winner = hash_of_mod (Patch.apply original c.patch) in
        let nodes = genealogy lineage winner in
        if track then
          List.iter
            (fun ((_ : string), n) ->
              let r = funnel_get funnel n.l_op in
              r.f_lineage <- r.f_lineage + 1)
            nodes;
        journal_lineage ~winner nodes
    | None -> ());
    Obs.Journal.emit
      [
        ("type", Obs.Json.Str "result");
        ("repaired", Obs.Json.Bool (!found <> None));
        ( "edits",
          match minimized with
          | None -> Obs.Json.Null
          | Some p -> Obs.Json.Int (List.length p) );
        ( "patch",
          match minimized with
          | None -> Obs.Json.Null
          | Some p -> Obs.Json.Str (Patch.to_string p) );
        ("generations", Obs.Json.Int !gen);
        ("probes", Obs.Json.Int ev.probes);
        ("lookups", Obs.Json.Int ev.lookups);
        ("memo_hits", Obs.Json.Int (Evaluate.memo_hits ev));
        ("mutants", Obs.Json.Int !mutants);
        ("wall_seconds", Obs.Json.Float (Unix.gettimeofday () -. t0));
      ];
    journal_funnel funnel;
    journal_run_end ev
      ~status:(if !found <> None then "repaired" else "no_repair")
      ~elapsed:(Unix.gettimeofday () -. t0)
      ([
         ("generations", Obs.Json.Int !gen);
         ("mutants", Obs.Json.Int !mutants);
         ("proposed", Obs.Json.Int (funnel_total funnel (fun r -> r.f_proposed)));
         ("survived", Obs.Json.Int (funnel_total funnel (fun r -> r.f_survived)));
         ( "in_lineage",
           Obs.Json.Int (funnel_total funnel (fun r -> r.f_lineage)) );
       ]
      @
      if cfg.slice then
        [
          ( "slice_sims",
            Obs.Json.Int (match slicing with Some _ -> ev.probes | None -> 0)
          );
          ("stitched_verifies", Obs.Json.Int !stitched);
        ]
      else [])
  end;
  {
    repaired = !found;
    minimized;
    repaired_module =
      Option.map
        (fun p ->
          match slicing with
          | None -> Patch.apply original p
          | Some s -> Slicing.stitch s p)
        minimized;
    generations = List.rev !gen_stats;
    probes = ev.probes;
    lookups = ev.lookups;
    memo_hits = Evaluate.memo_hits ev;
    compile_errors = ev.compile_errors;
    static_rejects = ev.static_rejects;
    oversize_rejects = ev.oversize_rejects;
    racy_rejects = ev.racy_rejects;
    runtime_races = ev.runtime_races;
    semantic_hits = ev.semantic_hits;
    dead_edit_skips = ev.dead_edit_skips;
    lane_seconds = ev.lane_seconds;
    sims_event = ev.sims_event;
    sims_compiled = ev.sims_compiled;
    compiled_fallbacks = ev.compiled_fallbacks;
    sim_seconds_event = ev.sim_seconds_event;
    sim_seconds_compiled = ev.sim_seconds_compiled;
    mutants_generated = !mutants;
    wall_seconds = Unix.gettimeofday () -. t0;
    initial_fitness = initial.outcome.fitness;
    sliced = slicing <> None;
    slice_sims = (match slicing with Some _ -> ev.probes | None -> 0);
    stitched_verifies = !stitched;
  }
