(** Candidate evaluation: materialize a patch, simulate the resulting
    design under the instrumented testbench, and score it against the
    oracle. Evaluations are memoized on the materialized source; candidate
    simulations run under budgets scaled to the golden run so runaway
    mutants are cut off quickly. *)

type status =
  | Simulated  (** ran to completion (or quiesced) *)
  | Compile_error of string
      (** elaboration failed or the candidate was rejected outright —
          the hardware analogue of a mutant that does not compile *)
  | Sim_diverged of string  (** budget or simulated-time limit reached *)
  | Rejected_static of string
      (** the pre-simulation screener ({!Verilog.Analysis}) proved the
          mutant doomed; scored like a compile error, but no simulation
          budget was spent *)

type outcome = {
  fitness : float;
  trace : Sim.Recorder.trace;
  status : status;
}

type t = {
  problem : Problem.t;
  cfg : Config.t;
  original_size : int;
  cache : (string, outcome) Hashtbl.t;
  mutable probes : int;  (** simulations actually run (cache misses) *)
  mutable lookups : int;  (** evaluations requested *)
  mutable compile_errors : int;
  mutable static_rejects : int;
      (** candidates rejected by the static screener without simulation *)
}

val create : Config.t -> Problem.t -> t
val eval_module : t -> Verilog.Ast.module_decl -> outcome
val eval_patch : t -> Verilog.Ast.module_decl -> Patch.t -> outcome
