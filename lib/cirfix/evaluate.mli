(** Candidate evaluation: materialize a patch, simulate the resulting
    design under the instrumented testbench, and score it against the
    oracle. Evaluations are memoized on a structural digest of the
    materialized module; candidate simulations run under budgets scaled to
    the golden run so runaway mutants are cut off quickly.

    Scoring splits into a pure compute step (safe on any domain) and
    sequential accounting that owns the memo cache and counters. The
    {!prepare}/{!commit} pair batches the compute step over a {!Pool}
    while keeping accounting — and therefore probe counts and cache
    state — identical to the sequential path for every [jobs] setting. *)

type status =
  | Simulated  (** ran to completion (or quiesced) *)
  | Compile_error of string
      (** elaboration failed — the hardware analogue of a mutant that
          does not compile *)
  | Sim_diverged of string  (** budget or simulated-time limit reached *)
  | Rejected_static of string
      (** the pre-simulation screener ({!Verilog.Analysis}) proved the
          mutant doomed; scored like a compile error, but no simulation
          budget was spent *)
  | Rejected_oversize
      (** runaway insertion growth: rejected outright without parsing or
          simulating, and counted under its own statistic *)
  | Rejected_racy of string
      (** the static race analyzer ({!Verilog.Race}) found a hazard in the
          candidate module; rejected without simulation when
          [cfg.screen_races] is set *)
  | Skipped_dead_edit
      (** the dataflow pruner ({!Verilog.Dataflow}) proved the candidate's
          edit dead — erasing provably-dead code yields the seed module's
          own skeleton — so the seed's fitness was reused without
          simulating *)

type outcome = {
  fitness : float;
  trace : Sim.Recorder.trace;
  status : status;
  races : int;
      (** dynamic races observed during the candidate's simulation; 0
          unless [cfg.check_races] and the candidate was simulated *)
  sim_backend : string;
      (** which backend actually ran ("event", "compiled", or
          "fallback:<reason>"); "" when the candidate was never simulated *)
  sim_seconds : float;
      (** wall time spent inside the simulator for this outcome; timing
          only, excluded from journals *)
}

type t = {
  problem : Problem.t;
  cfg : Config.t;
  original_size : int;
  cache : (string, outcome) Hashtbl.t;
  sem_tbl : (string, string) Hashtbl.t;
      (** semantic hash -> structural cache key of the donor candidate *)
  lanes_enabled : bool;
      (** static pruning active: [cfg.prune], no runtime race checking,
          and no parameter overrides on any instance of the target *)
  seed_key : string;  (** structural key of the unpatched module *)
  seed_prune_hash : string option;
      (** dead-edit skeleton hash of the unpatched module, when pruning *)
  mutable probes : int;  (** simulations actually run (cache misses) *)
  mutable lookups : int;  (** evaluations requested *)
  mutable compile_errors : int;
  mutable static_rejects : int;
      (** candidates rejected by the static screener without simulation *)
  mutable oversize_rejects : int;
      (** candidates rejected for implausible size without simulation *)
  mutable racy_rejects : int;
      (** candidates rejected by the static race screen without simulation *)
  mutable runtime_races : int;
      (** dynamic races observed across all non-memoized simulations *)
  mutable semantic_hits : int;
      (** lookups served by folding a semantically-equivalent candidate
          onto an already-scored one, without simulating *)
  mutable dead_edit_skips : int;
      (** lookups served by the dead-edit proof (seed fitness reused
          under {!Skipped_dead_edit}), without simulating *)
  mutable lane_seconds : float;
      (** wall-clock time spent deciding the static lanes — the analysis
          overhead reported by [bench dataflow-prune]; not journaled *)
  mutable sims_event : int;
      (** non-memoized simulations that ran on the event engine (including
          fallbacks from a requested compilation) *)
  mutable sims_compiled : int;
      (** non-memoized simulations that ran on the compiled backend *)
  mutable compiled_fallbacks : int;
      (** simulations where compilation was requested but the design fell
          back to the event engine; a subset of [sims_event] *)
  mutable sim_seconds_event : float;
      (** cumulative in-simulator wall time on the event engine; timing
          only, not journaled *)
  mutable sim_seconds_compiled : float;
      (** cumulative in-simulator wall time on the compiled backend;
          timing only, not journaled *)
}

val create : Config.t -> Problem.t -> t

(** Memo-cache key for a candidate under a configuration: the configured
    backend's name prefixed onto the module's structural hash, so cached
    fitness can never leak between [--backend] settings. *)
val key_of : Config.t -> Verilog.Ast.module_decl -> string
val eval_module : t -> Verilog.Ast.module_decl -> outcome
val eval_patch : t -> Verilog.Ast.module_decl -> Patch.t -> outcome

(** Evaluations absorbed by the memo cache: [lookups] minus the
    candidates that were actually scored (probes plus every pre-simulation
    rejection) and minus the static-lane hits, which are counted under
    [semantic_hits] / [dead_edit_skips]. *)
val memo_hits : t -> int

(** Short stable label for a status ("simulated", "compile_error", ...),
    as used in metric names and trace span arguments. *)
val status_label : status -> string

(** Per-signal fitness attribution of an outcome against the problem's
    oracle under the configured phi ({!Fitness.score_by_signal}); the
    per-signal sums add up to the outcome's aggregate score exactly. *)
val attribution : t -> outcome -> (string * Fitness.signal_score) list

(** A batch of candidates whose simulations have (possibly) been run
    speculatively across a pool, awaiting sequential commitment. *)
type prepared

(** [prepare ev ~pool candidates] scores the cache-missing candidates of
    the batch across [pool] without touching [ev]'s cache or counters.
    With a pool of size 1 this is free: nothing is precomputed and each
    {!commit} evaluates on demand — the sequential path. *)
val prepare : t -> pool:Pool.t -> Verilog.Ast.module_decl array -> prepared

(** [commit p i] finalizes candidate [i] with exactly the accounting of
    {!eval_module} (cache insertion, probe/reject counters), reusing the
    speculative simulation when one was prepared. Callers must commit in
    batch index order; stopping early discards the remaining speculative
    work and leaves [ev] byte-for-byte as a sequential run would. *)
val commit : prepared -> int -> outcome
