(* A repair problem: a faulty design (with its testbench), the module under
   repair, the simulation spec, and the expected-behaviour oracle. *)

type t = {
  name : string;
  design : Verilog.Ast.design; (* full design including the testbench *)
  target : string; (* name of the module being repaired *)
  spec : Sim.Simulate.spec;
  oracle : Oracle.t;
  golden_steps : int; (* statement count of the golden simulation *)
  golden_end_time : int; (* simulated end time of the golden run *)
}

exception Problem_error of string

let target_module (p : t) : Verilog.Ast.module_decl =
  match List.find_opt (fun m -> m.Verilog.Ast.mod_id = p.target) p.design with
  | Some m -> m
  | None -> raise (Problem_error ("no module named " ^ p.target))

(* Swap a candidate module in for the target. *)
let with_candidate (p : t) (candidate : Verilog.Ast.module_decl) :
    Verilog.Ast.design =
  List.map
    (fun (m : Verilog.Ast.module_decl) ->
      if m.mod_id = p.target then candidate else m)
    p.design

(* Build a problem from faulty sources, deriving the oracle by simulating
   the golden sources under the same spec. *)
let make ~name ~(faulty : string) ~(golden : string) ~(testbench : string)
    ~(target : string) (spec : Sim.Simulate.spec) : t =
  let parse what src =
    Obs.Trace.span ~cat:"problem"
      ~args:[ ("what", Obs.Json.Str what) ]
      "parse"
      (fun () ->
        match Verilog.Parser.parse_design_result src with
        | Ok d -> d
        | Error e -> raise (Problem_error (what ^ ": " ^ e)))
  in
  let golden_design = parse "golden" (golden ^ "\n" ^ testbench) in
  let golden_run =
    Obs.Trace.span ~cat:"problem" "golden_sim" @@ fun () ->
    match Sim.Simulate.run golden_design spec with
    | Ok r -> r
    | Error (Sim.Simulate.Elab_failure msg) ->
        raise (Problem_error ("golden design failed to elaborate: " ^ msg))
  in
  let oracle =
    match golden_run.outcome with
    | Sim.Engine.Finished | Sim.Engine.Quiescent -> golden_run.trace
    | Sim.Engine.Time_limit_reached ->
        raise (Problem_error "golden design hit the time limit")
    | Sim.Engine.Budget_exceeded m ->
        raise (Problem_error ("golden design exceeded budget: " ^ m))
  in
  let design = parse "faulty" (faulty ^ "\n" ^ testbench) in
  {
    name;
    design;
    target;
    spec;
    oracle;
    golden_steps = golden_run.steps;
    golden_end_time = golden_run.end_time;
  }
