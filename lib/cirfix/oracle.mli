(** Expected-behaviour information (paper Sec. 4.1.2): the oracle CirFix
    scores candidates against is a per-clock-edge trace of output wire and
    register values, obtained by simulating a previously-functioning
    (golden) version of the design under the instrumented testbench — or
    authored by hand in the same CSV format. *)

type t = Sim.Recorder.trace

exception Oracle_error of string

(** Simulate a golden design and capture its trace. Raises [Oracle_error]
    if the golden design fails to elaborate or exhausts its budget. *)
val of_golden_design :
  ?max_steps:int ->
  ?max_time:int ->
  Verilog.Ast.design ->
  Sim.Simulate.spec ->
  t

(** RQ4: keep only every [keep]-th sampled timestamp ([keep]=2 retains 50%,
    4 retains 25%). [keep] <= 1 is the identity. *)
val thin : keep:int -> t -> t

(** Restrict every sample to the named signals: the expected trace of a
    sliced module, whose recorder only observes the slice's outputs. *)
val restrict : names:string list -> t -> t

(** Fraction of [full]'s samples retained by [oracle]. *)
val coverage : full:t -> t -> float

(** CSV persistence in the paper's Figure 2 layout: a [time,...] header
    followed by one row per sampled edge. *)

val to_csv : t -> string
val of_csv : string -> t
