(* The CirFix fitness function (paper Sec. 3.2): a bit-level comparison of
   the recorded simulation trace against the expected-behaviour oracle.

   For each sampled timestamp and each output bit:
     +1    when expected and actual agree on a defined value (0/1),
     +phi  when both are x (or both z),
     -1    when both are defined but differ,
     -phi  when exactly one side is x/z (or x vs z).
   total() accumulates the corresponding positive magnitudes, and
   fitness = max(0, sum) / total, in [0, 1]; 1.0 is a plausible repair.

   Scoring is attributed per output signal ([score_by_signal]): the
   aggregate [score] is defined as the fold of the per-signal breakdown,
   so the per-signal sums add up to the aggregate exactly — that identity
   is what lets the repair journal explain a fitness value signal by
   signal (which output drags the score down, and from which timestamp). *)

open Logic4

type score = { sum : float; total : float; fitness : float }

type signal_score = {
  s_sum : float;
  s_total : float;
  s_fitness : float;
  first_divergence : int option;
}

let classify (o : Bit.t) (s : Bit.t) : [ `Match | `XzMatch | `Mismatch | `XzMismatch ] =
  match (o, s) with
  | Bit.V0, Bit.V0 | Bit.V1, Bit.V1 -> `Match
  | Bit.X, Bit.X | Bit.Z, Bit.Z -> `XzMatch
  | Bit.V0, Bit.V1 | Bit.V1, Bit.V0 -> `Mismatch
  | _ -> `XzMismatch

(* Index the actual trace by timestamp once, so scoring a T-sample oracle
   is O(T) instead of the O(T^2) of a per-sample list search. Recorded
   traces have unique timestamps (one sample per rising clock edge);
   [replace] keeps the last sample should that ever not hold. *)
let actual_by_time (actual : Sim.Recorder.trace) :
    (int, (string * Vec.t) list) Hashtbl.t =
  let tbl = Hashtbl.create (2 * List.length actual) in
  List.iter
    (fun (a : Sim.Recorder.sample) -> Hashtbl.replace tbl a.t a.values)
    actual;
  tbl

(* Score one signal's vector pair bit by bit. Width mismatches follow
   Verilog zero-extension: [Vec.get] reads out-of-range bits as 0, so a
   narrower actual is compared as if resized to the expected width.
   [diverged] is true when any bit contributed negatively. *)
let score_vec ~phi (ov : Vec.t) (av : Vec.t) : float * float * bool =
  let w = Vec.width ov in
  let sum = ref 0. and total = ref 0. and diverged = ref false in
  for i = 0 to w - 1 do
    match classify (Vec.get ov i) (Vec.get av i) with
    | `Match ->
        sum := !sum +. 1.;
        total := !total +. 1.
    | `XzMatch ->
        sum := !sum +. phi;
        total := !total +. phi
    | `Mismatch ->
        sum := !sum -. 1.;
        total := !total +. 1.;
        diverged := true
    | `XzMismatch ->
        sum := !sum -. phi;
        total := !total +. phi;
        diverged := true
  done;
  (!sum, !total, !diverged)

type cell = {
  mutable c_sum : float;
  mutable c_total : float;
  mutable c_first : int option;
}

(* Per-signal scoring breakdown. Signals present in the oracle but absent
   from the simulation (or whole missing samples, e.g. after an aborted
   run) count as fully unknown, exactly as in the aggregate score. The
   result is sorted by signal name. *)
let score_by_signal ~(phi : float) ~(expected : Sim.Recorder.trace)
    ~(actual : Sim.Recorder.trace) : (string * signal_score) list =
  let by_time = actual_by_time actual in
  let cells : (string, cell) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (es : Sim.Recorder.sample) ->
      let actual_values = Hashtbl.find_opt by_time es.t in
      List.iter
        (fun (name, ov) ->
          let av =
            match actual_values with
            | None -> Vec.all_x (Vec.width ov)
            | Some l -> (
                match List.assoc_opt name l with
                | Some v -> v
                | None -> Vec.all_x (Vec.width ov))
          in
          let dsum, dtotal, diverged = score_vec ~phi ov av in
          let c =
            match Hashtbl.find_opt cells name with
            | Some c -> c
            | None ->
                let c = { c_sum = 0.; c_total = 0.; c_first = None } in
                Hashtbl.add cells name c;
                order := name :: !order;
                c
          in
          c.c_sum <- c.c_sum +. dsum;
          c.c_total <- c.c_total +. dtotal;
          if diverged && c.c_first = None then c.c_first <- Some es.t)
        es.values)
    expected;
  List.rev !order
  |> List.sort compare
  |> List.map (fun name ->
         let c = Hashtbl.find cells name in
         ( name,
           {
             s_sum = c.c_sum;
             s_total = c.c_total;
             s_fitness =
               (if c.c_total <= 0. then 0.
                else Float.max 0. c.c_sum /. c.c_total);
             first_divergence = c.c_first;
           } ))

(* The aggregate score is the fold of the per-signal breakdown, so
   per-signal sums and totals add up to the aggregate exactly (same
   floating-point additions, signal-major order). *)
let score ~(phi : float) ~(expected : Sim.Recorder.trace)
    ~(actual : Sim.Recorder.trace) : score =
  let sum, total =
    List.fold_left
      (fun (sum, total) (_, (s : signal_score)) ->
        (sum +. s.s_sum, total +. s.s_total))
      (0., 0.)
      (score_by_signal ~phi ~expected ~actual)
  in
  let fitness = if total <= 0. then 0. else Float.max 0. sum /. total in
  { sum; total; fitness }

let fitness ~phi ~expected ~actual = (score ~phi ~expected ~actual).fitness

(* Output wires/registers whose value ever disagrees with the oracle — the
   starting mismatch set for fault localization (Alg. 2 line 2). A signal
   also mismatches if the simulation never produced its sample. Uses the
   same timestamp index as [score_by_signal], so the pass is O(T). *)
let mismatched_signals ~(expected : Sim.Recorder.trace)
    ~(actual : Sim.Recorder.trace) : string list =
  let by_time = actual_by_time actual in
  let bad = Hashtbl.create 8 in
  List.iter
    (fun (es : Sim.Recorder.sample) ->
      let actual_values = Hashtbl.find_opt by_time es.t in
      List.iter
        (fun (name, ov) ->
          let av =
            match actual_values with
            | None -> Vec.all_x (Vec.width ov)
            | Some l -> (
                match List.assoc_opt name l with
                | Some v -> v
                | None -> Vec.all_x (Vec.width ov))
          in
          if not (Vec.equal (Vec.resize (Vec.width ov) av) ov) then
            Hashtbl.replace bad name ())
        es.values)
    expected;
  Hashtbl.fold (fun k () acc -> k :: acc) bad [] |> List.sort compare
