(* The straightforward baseline from RQ1: enumerate edits uniformly over
   the whole design (no fault localization, no fitness guidance beyond the
   plausibility check), breadth-first over edit depth. The paper reports it
   finds no repairs within the resource bounds on the benchmark suite. *)

open Verilog.Ast

type result = {
  repaired : Patch.t option;
  probes : int;
  static_rejects : int; (* candidates screened out before simulation *)
  oversize_rejects : int; (* candidates rejected for implausible size *)
  racy_rejects : int; (* candidates rejected by the static race screen *)
  wall_seconds : float;
  candidates_tried : int;
}

(* All single edits over the module: every delete, every same-class
   replacement, every insertion of an insertable statement after every
   statement, and every template at every eligible node. *)
let single_edits (m : module_decl) : Patch.edit list =
  let stmts = Verilog.Ast_utils.stmts_of_module m in
  let deletes = List.map (fun (s : stmt) -> Patch.Delete s.sid) stmts in
  let replaces =
    List.concat_map
      (fun (dest : stmt) ->
        Fix_loc.replacement_pool m ~target:dest
        |> List.map (fun src -> Patch.Replace (dest.sid, src)))
      stmts
  in
  let inserts =
    let pool = Fix_loc.insertion_pool m in
    List.concat_map
      (fun (dest : stmt) ->
        List.map (fun src -> Patch.Insert (dest.sid, src)) pool)
      stmts
  in
  let templates =
    List.concat_map
      (fun tpl ->
        Templates.eligible_targets tpl m
        |> List.concat_map (fun target ->
               match tpl with
               | Templates.Sens_posedge | Templates.Sens_negedge
               | Templates.Sens_level ->
                   (* One variant per signal in the module. *)
                   stmts
                   |> List.concat_map (fun s ->
                          Fault_loc.NameSet.elements (Fault_loc.stmt_idents s))
                   |> List.sort_uniq compare
                   |> List.map (fun sig_ -> Patch.Template (tpl, target, Some sig_))
               | _ -> [ Patch.Template (tpl, target, None) ]))
      Templates.all
  in
  deletes @ replaces @ inserts @ templates

let search ?(max_depth = 2) (cfg : Config.t) (problem : Problem.t) : result =
  let ev = Evaluate.create cfg problem in
  let original = Problem.target_module problem in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. cfg.max_wall_seconds in
  let tried = ref 0 in
  let found = ref None in
  let out_of_resources () =
    Unix.gettimeofday () > deadline || ev.probes >= cfg.max_probes
  in
  let edits = single_edits original in
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  (* The enumeration order of the sequential sweep, as a lazy stream:
     depth 1, then depth 2 combinations, ... The stream is consumed in
     chunks that are scored across the pool and committed in order, so the
     first repair found — and every counter — is the same at any [jobs]. *)
  let rec depth_seq prefix depth : Patch.t Seq.t =
    if depth = 0 then Seq.return (List.rev prefix)
    else
      Seq.concat_map
        (fun e -> depth_seq (e :: prefix) (depth - 1))
        (List.to_seq edits)
  in
  let chunk_size = max 16 (4 * Pool.size pool) in
  let take_chunk (s : Patch.t Seq.t) : Patch.t array * Patch.t Seq.t =
    let rec go acc n s =
      if n = 0 then (List.rev acc, s)
      else
        match Seq.uncons s with
        | None -> (List.rev acc, Seq.empty)
        | Some (p, rest) -> go (p :: acc) (n - 1) rest
    in
    let l, rest = go [] chunk_size s in
    (Array.of_list l, rest)
  in
  let d = ref 1 in
  while !found = None && !d <= max_depth && not (out_of_resources ()) do
    let stream = ref (depth_seq [] !d) in
    let exhausted = ref false in
    while (not !exhausted) && !found = None && not (out_of_resources ()) do
      let chunk, rest = take_chunk !stream in
      stream := rest;
      if Array.length chunk = 0 then exhausted := true
      else begin
        let mods = Array.map (Patch.apply original) chunk in
        let prepared = Evaluate.prepare ev ~pool mods in
        Array.iteri
          (fun i p ->
            if !found = None && not (out_of_resources ()) then (
              incr tried;
              if (Evaluate.commit prepared i).fitness >= 1.0 then
                found := Some p))
          chunk
      end
    done;
    incr d
  done;
  {
    repaired = !found;
    probes = ev.probes;
    static_rejects = ev.static_rejects;
    oversize_rejects = ev.oversize_rejects;
    racy_rejects = ev.racy_rejects;
    wall_seconds = Unix.gettimeofday () -. t0;
    candidates_tried = !tried;
  }
