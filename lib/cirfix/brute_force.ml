(* The straightforward baseline from RQ1: enumerate edits uniformly over
   the whole design (no fault localization, no fitness guidance beyond the
   plausibility check), breadth-first over edit depth. The paper reports it
   finds no repairs within the resource bounds on the benchmark suite. *)

open Verilog.Ast

type result = {
  repaired : Patch.t option;
  probes : int;
  static_rejects : int; (* candidates screened out before simulation *)
  wall_seconds : float;
  candidates_tried : int;
}

(* All single edits over the module: every delete, every same-class
   replacement, every insertion of an insertable statement after every
   statement, and every template at every eligible node. *)
let single_edits (m : module_decl) : Patch.edit list =
  let stmts = Verilog.Ast_utils.stmts_of_module m in
  let deletes = List.map (fun (s : stmt) -> Patch.Delete s.sid) stmts in
  let replaces =
    List.concat_map
      (fun (dest : stmt) ->
        Fix_loc.replacement_pool m ~target:dest
        |> List.map (fun src -> Patch.Replace (dest.sid, src)))
      stmts
  in
  let inserts =
    let pool = Fix_loc.insertion_pool m in
    List.concat_map
      (fun (dest : stmt) ->
        List.map (fun src -> Patch.Insert (dest.sid, src)) pool)
      stmts
  in
  let templates =
    List.concat_map
      (fun tpl ->
        Templates.eligible_targets tpl m
        |> List.concat_map (fun target ->
               match tpl with
               | Templates.Sens_posedge | Templates.Sens_negedge
               | Templates.Sens_level ->
                   (* One variant per signal in the module. *)
                   stmts
                   |> List.concat_map (fun s ->
                          Fault_loc.NameSet.elements (Fault_loc.stmt_idents s))
                   |> List.sort_uniq compare
                   |> List.map (fun sig_ -> Patch.Template (tpl, target, Some sig_))
               | _ -> [ Patch.Template (tpl, target, None) ]))
      Templates.all
  in
  deletes @ replaces @ inserts @ templates

let search ?(max_depth = 2) (cfg : Config.t) (problem : Problem.t) : result =
  let ev = Evaluate.create cfg problem in
  let original = Problem.target_module problem in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. cfg.max_wall_seconds in
  let tried = ref 0 in
  let found = ref None in
  let out_of_resources () =
    Unix.gettimeofday () > deadline || ev.probes >= cfg.max_probes
  in
  let edits = single_edits original in
  let try_patch p =
    if !found = None && not (out_of_resources ()) then (
      incr tried;
      if (Evaluate.eval_patch ev original p).fitness >= 1.0 then found := Some p)
  in
  (* Depth 1, then depth 2 combinations, ... *)
  let rec depth_n prefix depth =
    if depth = 0 then try_patch (List.rev prefix)
    else
      List.iter
        (fun e ->
          if !found = None && not (out_of_resources ()) then
            depth_n (e :: prefix) (depth - 1))
        edits
  in
  let d = ref 1 in
  while !found = None && !d <= max_depth && not (out_of_resources ()) do
    depth_n [] !d;
    incr d
  done;
  {
    repaired = !found;
    probes = ev.probes;
    static_rejects = ev.static_rejects;
    wall_seconds = Unix.gettimeofday () -. t0;
    candidates_tried = !tried;
  }
