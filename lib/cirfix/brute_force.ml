(* The straightforward baseline from RQ1: enumerate edits uniformly over
   the whole design (no fault localization, no fitness guidance beyond the
   plausibility check), breadth-first over edit depth. The paper reports it
   finds no repairs within the resource bounds on the benchmark suite. *)

open Verilog.Ast

type result = {
  repaired : Patch.t option;
  probes : int;
  lookups : int; (* evaluations requested (memoized or not) *)
  memo_hits : int; (* evaluations absorbed by the memo cache *)
  compile_errors : int; (* candidates that failed elaboration *)
  static_rejects : int; (* candidates screened out before simulation *)
  oversize_rejects : int; (* candidates rejected for implausible size *)
  racy_rejects : int; (* candidates rejected by the static race screen *)
  semantic_hits : int; (* evaluations folded onto a semantic twin *)
  dead_edit_skips : int; (* provably-dead edits scored without simulating *)
  sims_event : int; (* simulations that ran on the event engine *)
  sims_compiled : int; (* simulations that ran on the compiled backend *)
  compiled_fallbacks : int; (* compiled requests that fell back to event *)
  sim_seconds_event : float; (* in-simulator wall time, event engine *)
  sim_seconds_compiled : float; (* in-simulator wall time, compiled *)
  wall_seconds : float;
  candidates_tried : int;
  sliced : bool; (* slice-based search actually engaged *)
  slice_sims : int; (* simulations that ran on the sliced design *)
  stitched_verifies : int; (* whole-design re-verifications of winners *)
}

type progress = {
  bp_depth : int;
  bp_tried : int;
  bp_best : float;
  bp_probes : int;
  bp_lookups : int;
  bp_memo_hits : int;
}

(* Journal cadence: one batch record per this many committed candidates.
   A fixed quantum (rather than the pool's chunk size, which scales with
   [jobs]) keeps the record stream byte-identical across parallelism
   degrees. *)
let journal_quantum = 256

(* All single edits over the module: every delete, every same-class
   replacement, every insertion of an insertable statement after every
   statement, and every template at every eligible node. *)
let single_edits (m : module_decl) : Patch.edit list =
  let stmts = Verilog.Ast_utils.stmts_of_module m in
  let deletes = List.map (fun (s : stmt) -> Patch.Delete s.sid) stmts in
  let replaces =
    List.concat_map
      (fun (dest : stmt) ->
        Fix_loc.replacement_pool m ~target:dest
        |> List.map (fun src -> Patch.Replace (dest.sid, src)))
      stmts
  in
  let inserts =
    let pool = Fix_loc.insertion_pool m in
    List.concat_map
      (fun (dest : stmt) ->
        List.map (fun src -> Patch.Insert (dest.sid, src)) pool)
      stmts
  in
  let templates =
    List.concat_map
      (fun tpl ->
        Templates.eligible_targets tpl m
        |> List.concat_map (fun target ->
               match tpl with
               | Templates.Sens_posedge | Templates.Sens_negedge
               | Templates.Sens_level ->
                   (* One variant per signal in the module. *)
                   stmts
                   |> List.concat_map (fun s ->
                          Fault_loc.NameSet.elements (Fault_loc.stmt_idents s))
                   |> List.sort_uniq compare
                   |> List.map (fun sig_ -> Patch.Template (tpl, target, Some sig_))
               | _ -> [ Patch.Template (tpl, target, None) ]))
      Templates.all
  in
  deletes @ replaces @ inserts @ templates

let search ?(max_depth = 2) ?on_progress (cfg : Config.t)
    (whole_problem : Problem.t) :
    result =
  (* Slice-based search (see Gp.repair): the enumeration runs over the
     sliced module — fewer statements, so fewer single edits and cheaper
     simulations — and every slice-plausible patch is stitched back into
     the whole design and re-verified before being reported. *)
  let whole_ev = Evaluate.create cfg whole_problem in
  let slicing = if cfg.slice then Slicing.prepare whole_ev else None in
  let problem =
    match slicing with Some s -> s.Slicing.sliced | None -> whole_problem
  in
  let ev =
    match slicing with Some _ -> Evaluate.create cfg problem | None -> whole_ev
  in
  let stitched = ref 0 in
  let stitched_ok (patch : Patch.t) : bool =
    match slicing with
    | None -> true
    | Some s ->
        incr stitched;
        (Evaluate.eval_module whole_ev (Slicing.stitch s patch)).fitness >= 1.0
  in
  let original = Problem.target_module problem in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. cfg.max_wall_seconds in
  let tried = ref 0 in
  let found = ref None in
  let out_of_resources () =
    Unix.gettimeofday () > deadline || ev.probes >= cfg.max_probes
  in
  let edits = single_edits original in
  if Obs.Journal.enabled () then
    Obs.Journal.emit
      ([
         ("type", Obs.Json.Str "run");
         ("engine", Obs.Json.Str "brute");
         ("problem", Obs.Json.Str problem.name);
         ("single_edits", Obs.Json.Int (List.length edits));
       ]
      @ Config.journal_fields cfg);
  if Obs.Journal.enabled () then
    Option.iter (fun s -> Obs.Journal.emit (Slicing.journal_record s)) slicing;
  (* Best fitness seen so far (over committed candidates), reported in
     journal batch records. *)
  let best = ref 0. in
  let journal_batch ~depth =
    Obs.Journal.emit
      [
        ("type", Obs.Json.Str "batch");
        ("depth", Obs.Json.Int depth);
        ("tried", Obs.Json.Int !tried);
        ("best", Obs.Json.Float !best);
        ("probes", Obs.Json.Int ev.probes);
        ("lookups", Obs.Json.Int ev.lookups);
        ("memo_hits", Obs.Json.Int (Evaluate.memo_hits ev));
        ("compile_errors", Obs.Json.Int ev.compile_errors);
        ("static_rejects", Obs.Json.Int ev.static_rejects);
        ("oversize_rejects", Obs.Json.Int ev.oversize_rejects);
        ("racy_rejects", Obs.Json.Int ev.racy_rejects);
        ("semantic_hits", Obs.Json.Int ev.semantic_hits);
        ("dead_edit_skips", Obs.Json.Int ev.dead_edit_skips);
        ("elapsed_s", Obs.Json.Float (Unix.gettimeofday () -. t0));
      ]
  in
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  (* The enumeration order of the sequential sweep, as a lazy stream:
     depth 1, then depth 2 combinations, ... The stream is consumed in
     chunks that are scored across the pool and committed in order, so the
     first repair found — and every counter — is the same at any [jobs]. *)
  let rec depth_seq prefix depth : Patch.t Seq.t =
    if depth = 0 then Seq.return (List.rev prefix)
    else
      Seq.concat_map
        (fun e -> depth_seq (e :: prefix) (depth - 1))
        (List.to_seq edits)
  in
  let chunk_size = max 16 (4 * Pool.size pool) in
  let take_chunk (s : Patch.t Seq.t) : Patch.t array * Patch.t Seq.t =
    let rec go acc n s =
      if n = 0 then (List.rev acc, s)
      else
        match Seq.uncons s with
        | None -> (List.rev acc, Seq.empty)
        | Some (p, rest) -> go (p :: acc) (n - 1) rest
    in
    let l, rest = go [] chunk_size s in
    (Array.of_list l, rest)
  in
  let d = ref 1 in
  while !found = None && !d <= max_depth && not (out_of_resources ()) do
    let stream = ref (depth_seq [] !d) in
    let exhausted = ref false in
    while (not !exhausted) && !found = None && not (out_of_resources ()) do
      let chunk, rest = take_chunk !stream in
      stream := rest;
      if Array.length chunk = 0 then exhausted := true
      else begin
        let t_chunk = if Obs.Trace.enabled () then Obs.Trace.begin_ () else 0 in
        let mods = Array.map (Patch.apply original) chunk in
        let prepared = Evaluate.prepare ev ~pool mods in
        Array.iteri
          (fun i p ->
            if !found = None && not (out_of_resources ()) then (
              incr tried;
              let o = Evaluate.commit prepared i in
              if o.fitness > !best then best := o.fitness;
              if o.fitness >= 1.0 && stitched_ok p then found := Some p;
              if Obs.Journal.enabled () && !tried mod journal_quantum = 0 then
                journal_batch ~depth:!d;
              Option.iter
                (fun f ->
                  f
                    {
                      bp_depth = !d;
                      bp_tried = !tried;
                      bp_best = !best;
                      bp_probes = ev.probes;
                      bp_lookups = ev.lookups;
                      bp_memo_hits = Evaluate.memo_hits ev;
                    })
                on_progress))
          chunk;
        if Obs.Trace.enabled () then
          Obs.Trace.complete ~cat:"brute"
            ~args:
              [
                ("depth", Obs.Json.Int !d);
                ("chunk", Obs.Json.Int (Array.length chunk));
              ]
            ~name:"brute.chunk" t_chunk
      end
    done;
    (* Depth boundary: flush a record so partial quanta are visible. The
       boundary is a property of the committed stream, not the pool. *)
    if Obs.Journal.enabled () then journal_batch ~depth:!d;
    incr d
  done;
  if Obs.Journal.enabled () then begin
    Obs.Journal.emit
      [
        ("type", Obs.Json.Str "result");
        ("repaired", Obs.Json.Bool (!found <> None));
        ( "edits",
          match !found with
          | None -> Obs.Json.Null
          | Some p -> Obs.Json.Int (List.length p) );
        ( "patch",
          match !found with
          | None -> Obs.Json.Null
          | Some p -> Obs.Json.Str (Patch.to_string p) );
        ("tried", Obs.Json.Int !tried);
        ("probes", Obs.Json.Int ev.probes);
        ("lookups", Obs.Json.Int ev.lookups);
        ("memo_hits", Obs.Json.Int (Evaluate.memo_hits ev));
        ("wall_seconds", Obs.Json.Float (Unix.gettimeofday () -. t0));
      ];
    (* Terminal record; [elapsed_s] is the documented timing field,
       excluded from the cross-[jobs] byte-equality contract. *)
    Obs.Journal.emit
      ([
        ("type", Obs.Json.Str "run_end");
        ( "status",
          Obs.Json.Str (if !found <> None then "repaired" else "no_repair") );
        ("elapsed_s", Obs.Json.Float (Unix.gettimeofday () -. t0));
        ("evals", Obs.Json.Int ev.lookups);
        ("probes", Obs.Json.Int ev.probes);
        ("memo_hits", Obs.Json.Int (Evaluate.memo_hits ev));
        ("compile_errors", Obs.Json.Int ev.compile_errors);
        ("static_rejects", Obs.Json.Int ev.static_rejects);
        ("oversize_rejects", Obs.Json.Int ev.oversize_rejects);
        ("racy_rejects", Obs.Json.Int ev.racy_rejects);
        ("semantic_hits", Obs.Json.Int ev.semantic_hits);
        ("dead_edit_skips", Obs.Json.Int ev.dead_edit_skips);
        ("runtime_races", Obs.Json.Int ev.runtime_races);
        ("sims_event", Obs.Json.Int ev.sims_event);
        ("sims_compiled", Obs.Json.Int ev.sims_compiled);
        ("compiled_fallbacks", Obs.Json.Int ev.compiled_fallbacks);
        ("tried", Obs.Json.Int !tried);
      ]
      @
      if cfg.slice then
        [
          ( "slice_sims",
            Obs.Json.Int (match slicing with Some _ -> ev.probes | None -> 0)
          );
          ("stitched_verifies", Obs.Json.Int !stitched);
        ]
      else [])
  end;
  {
    repaired = !found;
    probes = ev.probes;
    lookups = ev.lookups;
    memo_hits = Evaluate.memo_hits ev;
    compile_errors = ev.compile_errors;
    static_rejects = ev.static_rejects;
    oversize_rejects = ev.oversize_rejects;
    racy_rejects = ev.racy_rejects;
    semantic_hits = ev.semantic_hits;
    dead_edit_skips = ev.dead_edit_skips;
    sims_event = ev.sims_event;
    sims_compiled = ev.sims_compiled;
    compiled_fallbacks = ev.compiled_fallbacks;
    sim_seconds_event = ev.sim_seconds_event;
    sim_seconds_compiled = ev.sim_seconds_compiled;
    wall_seconds = Unix.gettimeofday () -. t0;
    candidates_tried = !tried;
    sliced = slicing <> None;
    slice_sims = (match slicing with Some _ -> ev.probes | None -> 0);
    stitched_verifies = !stitched;
  }
