(** The straightforward baseline from the paper's RQ1: breadth-first
    enumeration of edits applied uniformly to the design, with no fault
    localization and no fitness guidance beyond the plausibility check. *)

type result = {
  repaired : Patch.t option;
  probes : int;
  lookups : int;  (** evaluations requested, memoized or not *)
  memo_hits : int;  (** evaluations absorbed by the memo cache *)
  compile_errors : int;  (** candidates that failed elaboration *)
  static_rejects : int;
      (** candidates screened out statically, without simulation *)
  oversize_rejects : int;
      (** candidates rejected for implausible size without simulation *)
  racy_rejects : int;
      (** candidates rejected by the static race screen without simulation *)
  semantic_hits : int;
      (** evaluations folded onto a semantically-equivalent, already-scored
          candidate without simulating *)
  dead_edit_skips : int;
      (** candidates whose edit was proved dead; seed fitness reused
          without simulating *)
  sims_event : int;
      (** simulations that ran on the event engine, including fallbacks
          from a requested compilation *)
  sims_compiled : int;
      (** simulations that ran on the compiled levelized backend *)
  compiled_fallbacks : int;
      (** simulations where compilation was requested but the design fell
          back to the event engine; a subset of [sims_event] *)
  sim_seconds_event : float;
      (** cumulative in-simulator wall time on the event engine (timing) *)
  sim_seconds_compiled : float;
      (** cumulative in-simulator wall time compiled (timing) *)
  wall_seconds : float;
  candidates_tried : int;
  sliced : bool;
      (** slice-based search actually engaged ([cfg.slice] and the slicer
          found a strictly smaller exact slice) *)
  slice_sims : int;
      (** candidate simulations that ran on the sliced design (equals
          [probes] when [sliced], 0 otherwise) *)
  stitched_verifies : int;
      (** slice-plausible candidates stitched back into the whole design
          and re-verified on the full oracle before being reported *)
}

(** Live search progress, as seen by the sequential commit loop; the
    values are independent of the parallelism degree. *)
type progress = {
  bp_depth : int;
  bp_tried : int;
  bp_best : float;
  bp_probes : int;
  bp_lookups : int;
  bp_memo_hits : int;
}

(** Every single edit over the module: deletes, same-class replacements,
    insertions, and template applications at each eligible node. *)
val single_edits : Verilog.Ast.module_decl -> Patch.edit list

(** Enumerate patches up to [max_depth] edits (default 2) under the
    configuration's probe and wall-clock budgets. The sweep is scored in
    chunks across [cfg.jobs] domains; enumeration order, the repair found,
    and all counters are independent of the parallelism degree.
    [on_progress] fires after every committed candidate. *)
val search :
  ?max_depth:int -> ?on_progress:(progress -> unit) -> Config.t -> Problem.t ->
  result
