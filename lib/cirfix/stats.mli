(** Statistics for the evaluation harness: descriptive statistics and the
    two-tailed Mann-Whitney U test (normal approximation with tie
    correction), as used by the paper's RQ2 analysis. *)

val mean : float list -> float
val median : float list -> float
val stddev : float list -> float

(** Simulations per wall-clock second (0 when no time elapsed); the
    throughput statistic reported by the CLI and the bench harness. *)
val sims_per_sec : probes:int -> wall_seconds:float -> float

(** Statement coverage as a percentage; 0 when [total] is 0. *)
val coverage_percent : covered:int -> total:int -> float

(** Races flagged by the runtime checker per thousand simulations; 0 when
    [probes] is 0. *)
val races_per_ksim : races:int -> probes:int -> float

(** [percent ~part ~total] as a percentage; 0 when [total] is 0. *)
val percent : part:int -> total:int -> float

(** Aligned table of label/value rows, one per line, indented by [indent]
    (default 2) spaces. Labels are padded to the widest label; the value's
    head (text before its first two-space gap, or the whole value) is
    right-aligned to the widest head, with any annotation after the gap in
    a third column. Column widths are recomputed from the rows, so callers
    pass unpadded values. *)
val kv_table : ?indent:int -> (string * string) list -> string

(** Ranks (1-based) with ties assigned their average rank. *)
val ranks : float array -> float array

(** Standard normal CDF (Abramowitz & Stegun 7.1.26 approximation). *)
val normal_cdf : float -> float

type mwu = { u : float; z : float; p_two_tailed : float }

(** Two-tailed Mann-Whitney U test; NaNs when either sample is empty. *)
val mann_whitney_u : float list -> float list -> mwu
