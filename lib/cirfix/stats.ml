(* Small statistics toolkit used by the evaluation harness: descriptive
   statistics and the two-tailed Mann-Whitney U test (normal approximation
   with tie correction), as used in the paper's RQ2. *)

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(* Throughput of a repair run: candidate simulations per wall-clock
   second, the headline metric of the parallel evaluation layer. *)
let sims_per_sec ~probes ~wall_seconds =
  if wall_seconds <= 0. then 0. else float_of_int probes /. wall_seconds

(* Statement coverage of a simulation as a percentage (0 when the design
   has no statements, e.g. a pure-structural netlist). *)
let coverage_percent ~covered ~total =
  if total <= 0 then 0. else 100. *. float_of_int covered /. float_of_int total

(* Dynamic race density: races flagged by the runtime checker per thousand
   candidate simulations (0 when nothing was simulated). *)
let races_per_ksim ~races ~probes =
  if probes <= 0 then 0. else 1000. *. float_of_int races /. float_of_int probes

(* Percentage helper for counter breakdowns (0 when the total is 0). *)
let percent ~part ~total =
  if total <= 0 then 0. else 100. *. float_of_int part /. float_of_int total

(* Render label/value rows as an aligned three-column table, one row per
   line: labels padded to the widest label, value heads (the text before
   the first two-space gap, or the whole value) right-aligned to the
   widest head, and any annotation after the gap in a third column. Both
   widths are recomputed from the rows themselves, so callers need no
   fixed-width padding and a label longer than every value — or a count
   wider than any caller guessed — can never shear the columns. Used for
   the CLI repair summaries. *)
let kv_table ?(indent = 2) (rows : (string * string) list) : string =
  let split v =
    let n = String.length v in
    let rec gap i =
      if i + 1 >= n then None
      else if v.[i] = ' ' && v.[i + 1] = ' ' then Some i
      else gap (i + 1)
    in
    match gap 0 with
    | None -> (String.trim v, "")
    | Some i ->
        (String.trim (String.sub v 0 i), String.trim (String.sub v i (n - i)))
  in
  let rows = List.map (fun (k, v) -> (k, split v)) rows in
  let label_w =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 rows
  in
  let head_w =
    List.fold_left (fun acc (_, (h, _)) -> max acc (String.length h)) 0 rows
  in
  rows
  |> List.map (fun (k, (head, annot)) ->
         let line =
           Printf.sprintf "%s%-*s  %*s" (String.make indent ' ') label_w k
             head_w head
         in
         if annot = "" then line else line ^ "  " ^ annot)
  |> String.concat "\n"

let median = function
  | [] -> nan
  | l ->
      let a = Array.of_list l in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let stddev l =
  match l with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean l in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. l
        /. float_of_int (List.length l - 1)
      in
      sqrt var

(* Ranks with ties averaged. *)
let ranks (values : float array) : float array =
  let n = Array.length values in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare values.(a) values.(b)) order;
  let r = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && values.(order.(!j + 1)) = values.(order.(!i)) do
      incr j
    done;
    (* Positions !i..!j are tied; assign the average rank (1-based). *)
    let avg = float_of_int (!i + !j + 2) /. 2. in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

(* Standard normal CDF via the error function approximation
   (Abramowitz & Stegun 7.1.26). *)
let normal_cdf z =
  let t = 1. /. (1. +. (0.3275911 *. Float.abs z /. sqrt 2.)) in
  let poly =
    t
    *. (0.254829592
       +. (t
          *. (-0.284496736
             +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  let erf = 1. -. (poly *. exp (-.(z *. z) /. 2.)) in
  if z >= 0. then 0.5 *. (1. +. erf) else 0.5 *. (1. -. erf)

type mwu = { u : float; z : float; p_two_tailed : float }

(* Two-tailed Mann-Whitney U test between samples [a] and [b]. *)
let mann_whitney_u (a : float list) (b : float list) : mwu =
  let na = List.length a and nb = List.length b in
  if na = 0 || nb = 0 then { u = nan; z = nan; p_two_tailed = nan }
  else (
    let all = Array.of_list (a @ b) in
    let r = ranks all in
    let ra = ref 0. in
    for i = 0 to na - 1 do
      ra := !ra +. r.(i)
    done;
    let fa = float_of_int na and fb = float_of_int nb in
    let u1 = !ra -. (fa *. (fa +. 1.) /. 2.) in
    let u2 = (fa *. fb) -. u1 in
    let u = Float.min u1 u2 in
    let mu = fa *. fb /. 2. in
    (* Tie correction for the variance. *)
    let n = fa +. fb in
    let tie_term =
      let tbl = Hashtbl.create 16 in
      Array.iter
        (fun v ->
          Hashtbl.replace tbl v (1 + Option.value (Hashtbl.find_opt tbl v) ~default:0))
        all;
      Hashtbl.fold
        (fun _ t acc ->
          let t = float_of_int t in
          acc +. ((t ** 3.) -. t))
        tbl 0.
    in
    let sigma2 = fa *. fb /. 12. *. (n +. 1. -. (tie_term /. (n *. (n -. 1.)))) in
    let sigma = sqrt (Float.max sigma2 1e-12) in
    let z = (u -. mu) /. sigma in
    let p = 2. *. normal_cdf (-.Float.abs z) in
    { u; z; p_two_tailed = Float.min 1.0 p })
