(* Expected-behaviour information (paper Sec. 4.1.2). The oracle is a
   recorded trace of output wire/register values per clock edge, obtained
   here — as in the paper's benchmark construction — by simulating a
   previously-functioning (golden) version of the design under the
   instrumented testbench. *)

type t = Sim.Recorder.trace

exception Oracle_error of string

(* Simulate a golden design and capture its trace as the oracle. *)
let of_golden_design ?(max_steps = 2_000_000) ?(max_time = 1_000_000)
    (design : Verilog.Ast.design) (spec : Sim.Simulate.spec) : t =
  match Sim.Simulate.run ~max_steps ~max_time design spec with
  | Error (Sim.Simulate.Elab_failure msg) ->
      raise (Oracle_error ("golden design failed to elaborate: " ^ msg))
  | Ok r -> (
      match r.outcome with
      | Sim.Engine.Finished | Sim.Engine.Quiescent -> r.trace
      | Sim.Engine.Time_limit_reached ->
          raise (Oracle_error "golden design hit the time limit")
      | Sim.Engine.Budget_exceeded m ->
          raise (Oracle_error ("golden design exceeded budget: " ^ m)))

(* RQ4: degrade the quality of the correctness information by keeping only
   every [keep]-th sampled timestamp (keep=2 -> 50%, keep=4 -> 25%). *)
let thin ~(keep : int) (oracle : t) : t =
  if keep <= 1 then oracle
  else
    List.filteri (fun i _ -> i mod keep = 0) oracle

(* Restrict the oracle to a subset of its signals — the expected trace of
   a sliced module, whose recorder only sees the slice's output ports. *)
let restrict ~(names : string list) (oracle : t) : t =
  List.map
    (fun (s : Sim.Recorder.sample) ->
      { s with values = List.filter (fun (n, _) -> List.mem n names) s.values })
    oracle

(* Fraction of samples retained, for reporting. *)
let coverage ~(full : t) (oracle : t) : float =
  if full = [] then 0.
  else float_of_int (List.length oracle) /. float_of_int (List.length full)

(* --- CSV persistence (the paper's Figure 2 format) --------------------- *)

let to_csv (oracle : t) : string = Sim.Recorder.to_string oracle

let of_csv (text : string) : t =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> []
  | header :: rows ->
      let names =
        match String.split_on_char ',' header with
        | "time" :: rest -> rest
        | _ -> raise (Oracle_error "csv header must start with 'time'")
      in
      List.map
        (fun row ->
          match String.split_on_char ',' row with
          | t :: vals when List.length vals = List.length names ->
              {
                Sim.Recorder.t =
                  (try int_of_string (String.trim t)
                   with _ -> raise (Oracle_error ("bad timestamp: " ^ t)));
                values =
                  List.map2
                    (fun n v -> (n, Logic4.Vec.of_string (String.trim v)))
                    names vals;
              }
          | _ -> raise (Oracle_error ("malformed csv row: " ^ row)))
        rows
