(** Repair patches: each candidate program variant is a sequence of AST
    edits parameterized by node numbers (paper Sec. 3). Edits embed the
    fragment they insert or substitute, so a patch applies deterministically
    to the original module; an edit whose target no longer exists is a
    no-op, as in GenProg-style patch representations. *)

type edit =
  | Replace of Verilog.Ast.id * Verilog.Ast.stmt
      (** replace the statement with the embedded fragment *)
  | Insert of Verilog.Ast.id * Verilog.Ast.stmt
      (** insert the fragment after the statement *)
  | Delete of Verilog.Ast.id
  | Template of Templates.t * Verilog.Ast.id * string option
      (** template application at a node, with an optional signal
          parameter for the sensitivity-list templates *)

type t = edit list

val edit_to_string : edit -> string
val to_string : t -> string

(** Apply one edit; [None] when the target id is absent from the module. *)
val apply_edit :
  Verilog.Ast.module_decl -> edit -> Verilog.Ast.module_decl option

(** Apply a whole patch to the original module, skipping edits that no
    longer apply. *)
val apply : Verilog.Ast.module_decl -> t -> Verilog.Ast.module_decl

(** Structural digest of the materialized module (node ids ignored), used
    to memoize fitness evaluations: distinct patches that produce the same
    program share one simulation. *)
val digest : Verilog.Ast.module_decl -> t -> string
