(* Slice-based repair support: derive a sliced repair problem from a
   whole-design one, and stitch slice-found patches back for whole-design
   re-verification. See slicing.mli for the soundness argument. *)

module Slice = Verilog.Slice

type t = {
  plan : Slice.plan;
  whole_target : Verilog.Ast.module_decl;
  sliced : Problem.t;
  focus : Fault_loc.IdSet.t;
  mismatch : string list;
}

(* The DUT instance name, when the recorder's path is a direct child of
   the testbench top ("tb.dut" -> "dut"). Deeper paths mean the target is
   a submodule the slicer cannot rewire from the top testbench. *)
let dut_instance (spec : Sim.Simulate.spec) : string option =
  let prefix = spec.top ^ "." in
  let plen = String.length prefix in
  if
    String.length spec.dut_path > plen
    && String.sub spec.dut_path 0 plen = prefix
    && not (String.contains_from spec.dut_path plen '.')
  then Some (String.sub spec.dut_path plen (String.length spec.dut_path - plen))
  else None

let find_module (design : Verilog.Ast.design) (name : string) =
  List.find_opt (fun (m : Verilog.Ast.module_decl) -> m.mod_id = name) design

(* Is testbench instance [inst] an instantiation of [target]? *)
let instance_is (tb : Verilog.Ast.module_decl) ~(inst : string)
    ~(target : string) : bool =
  List.exists
    (fun (item : Verilog.Ast.item) ->
      match item.it with
      | Verilog.Ast.Instance { mod_name; inst_name; _ } ->
          inst_name = inst && mod_name = target
      | _ -> false)
    tb.items

(* Every node id (item, statement, expression) inside the given items —
   the granularity fault localization and the mutation operators use. *)
let subtree_ids (m : Verilog.Ast.module_decl) (items : Slice.Ids.t) :
    Fault_loc.IdSet.t =
  List.fold_left
    (fun acc (item : Verilog.Ast.item) ->
      if not (Slice.Ids.mem item.iid items) then acc
      else
        Verilog.Ast_utils.fold_item
          (fun acc (s : Verilog.Ast.stmt) -> Fault_loc.IdSet.add s.sid acc)
          (fun acc (e : Verilog.Ast.expr) -> Fault_loc.IdSet.add e.eid acc)
          (Fault_loc.IdSet.add item.iid acc)
          item)
    Fault_loc.IdSet.empty m.items

let prepare (whole_ev : Evaluate.t) : t option =
  let problem = whole_ev.problem in
  match dut_instance problem.spec with
  | None -> None
  | Some inst -> (
      match find_module problem.design problem.spec.top with
      | None -> None
      | Some tb when not (instance_is tb ~inst ~target:problem.target) -> None
      | Some tb -> (
          let whole_target = Problem.target_module problem in
          match Slice.output_ports whole_target with
          | [] -> None
          | out_ports ->
              (* Score the unpatched seed on the whole design: the
                 mismatching outputs seed the cone, and the evaluation
                 primes [whole_ev]'s cache for later stitched verifies. *)
              let seed_outcome = Evaluate.eval_module whole_ev whole_target in
              let mismatch =
                Fitness.mismatched_signals ~expected:problem.oracle
                  ~actual:seed_outcome.trace
              in
              let tb_read =
                Slice.tb_read_outputs ~tb ~inst ~target:whole_target
              in
              let seed_outs =
                match List.filter (fun o -> List.mem o out_ports) mismatch with
                | [] -> out_ports (* mismatch invisible: keep every output *)
                | mism ->
                    List.sort_uniq compare
                      (mism @ Slice.Names.elements tb_read)
              in
              let plan =
                Slice.slice ~design:problem.design whole_target
                  ~outputs:seed_outs
              in
              if plan.sl_dropped = [] || plan.sl_promoted <> [] then None
              else
                let tb' =
                  Slice.rewrite_testbench ~tb ~inst ~target:whole_target plan
                in
                let design' =
                  List.map
                    (fun (m : Verilog.Ast.module_decl) ->
                      if m.mod_id = problem.target then plan.sl_module
                      else if m.mod_id = problem.spec.top then tb'
                      else m)
                    problem.design
                in
                let sliced =
                  {
                    problem with
                    design = design';
                    oracle =
                      Oracle.restrict ~names:plan.sl_outputs problem.oracle;
                  }
                in
                (* Backward/forward intersection: nodes inside kept items
                   that are also downstream of the seed localization set.
                   Engines use it to narrow mutation targets; extraction
                   itself stays backward-only (exact, no promotion). *)
                let focus =
                  if mismatch = [] then Fault_loc.IdSet.empty
                  else
                    let fl =
                      Fault_loc.localize whole_target ~mismatch
                    in
                    if Fault_loc.IdSet.is_empty fl.fl then Fault_loc.IdSet.empty
                    else
                      let g = Slice.build ~design:problem.design whole_target in
                      let fwd =
                        Slice.forward g
                          (Slice.Ids.of_list (Fault_loc.IdSet.elements fl.fl))
                      in
                      let kept = Slice.Ids.of_list plan.sl_kept in
                      subtree_ids whole_target (Slice.Ids.inter fwd kept)
                in
                Some { plan; whole_target; sliced; focus; mismatch }))

let stitch (s : t) (patch : Patch.t) : Verilog.Ast.module_decl =
  Patch.apply s.whole_target patch

let journal_record (s : t) : (string * Obs.Json.t) list =
  let p = s.plan in
  let strs l = Obs.Json.List (List.map (fun x -> Obs.Json.Str x) l) in
  let ints l = Obs.Json.List (List.map (fun x -> Obs.Json.Int x) l) in
  [
    ("type", Obs.Json.Str "slice");
    ("module", Obs.Json.Str s.whole_target.mod_id);
    ("mismatch", strs s.mismatch);
    ("outputs", strs p.sl_outputs);
    ("inputs", strs p.sl_inputs);
    ("promoted", strs p.sl_promoted);
    ("kept", ints p.sl_kept);
    ("dropped", ints p.sl_dropped);
    ("nodes_total", Obs.Json.Int p.sl_nodes_total);
    ("procs_kept", Obs.Json.Int p.sl_procs_kept);
    ("procs_total", Obs.Json.Int p.sl_procs_total);
    ("size", Obs.Json.Int (Verilog.Ast_utils.module_size p.sl_module));
    ( "whole_size",
      Obs.Json.Int (Verilog.Ast_utils.module_size s.whole_target) );
    ("focus_nodes", Obs.Json.Int (Fault_loc.IdSet.cardinal s.focus));
    ("structural_hash", Obs.Json.Str p.sl_hash);
  ]
