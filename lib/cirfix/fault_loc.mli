(** Dataflow-based fault localization for HDL descriptions (paper Sec. 3.1,
    Algorithm 2).

    A context-insensitive fixed-point analysis over assignments: starting
    from the set of output signals that mismatch the oracle, it implicates
    assignment statements writing a mismatched identifier (Impl-Data) and
    conditional statements mentioning one (Impl-Ctrl), adds implicated
    subtrees to the localization set, and feeds newly-seen identifiers back
    into the mismatch set (Add-Child) until a fixed point. Unlike
    spectrum-based localization, the result is a uniformly-ranked set,
    reflecting the parallel structure of hardware designs.

    For explainability the analysis additionally records, per node, the
    fixed-point round in which it was implicated; {!suspiciousness} turns
    that distance into a weight in (0, 1] used by the localization journal
    record and the {!heat_lines} source heatmap. The repair search itself
    still treats the set as uniformly ranked. *)

module IdSet : Set.S with type elt = int
module IdMap : Map.S with type key = int
module NameSet : Set.S with type elt = string

type result = {
  fl : IdSet.t;  (** implicated node ids (statements and expressions) *)
  mismatch : NameSet.t;  (** transitive closure of the mismatch set *)
  iterations : int;  (** fixed-point rounds taken *)
  rounds : int IdMap.t;
      (** round (1-based) in which each implicated node entered the set;
          the domain of this map equals [fl] *)
}

(** All identifiers appearing in a statement subtree, including names
    written by assignments. *)
val stmt_idents : Verilog.Ast.stmt -> NameSet.t

(** Run Algorithm 2 on one module given the initial output-mismatch set. *)
val localize : Verilog.Ast.module_decl -> mismatch:string list -> result

(** [suspiciousness r id] is [1/round] for implicated nodes (1.0 for nodes
    that touch a mismatched output directly), 0 for the rest. *)
val suspiciousness : result -> int -> float

(** Statements of [m] within the localization set — the mutation targets. *)
val fl_statements :
  Verilog.Ast.module_decl -> result -> Verilog.Ast.stmt list

(** Every statement of the module; used when fault localization is disabled
    (ablation) or yields an empty set. *)
val all_statements : Verilog.Ast.module_decl -> Verilog.Ast.stmt list

(** The pretty-printed module, one entry per source line, each with the
    max suspiciousness of the implicated statements whose rendering
    contains that (trimmed) line — the per-line heatmap behind the
    [localization] journal record and the HTML report. Unimplicated lines
    carry weight 0. *)
val heat_lines :
  Verilog.Ast.module_decl -> result -> (string * float) list
