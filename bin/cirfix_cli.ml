(* The cirfix command-line tool.

     cirfix simulate  --design d.v --testbench tb.v --top tb --clock tb.clk --dut tb.dut
     cirfix oracle    --design golden.v --testbench tb.v ...      > oracle.csv
     cirfix localize  --design faulty.v --golden golden.v --testbench tb.v ...
     cirfix repair    --design faulty.v --golden golden.v --testbench tb.v ... [GP flags]
     cirfix scenarios [--id N] [--dump-faulty]

   Mirrors the paper artifact's repair.py driver, with the benchmark suite
   built in. *)

open Cmdliner

let read_file path =
  try Ok (In_channel.with_open_text path In_channel.input_all)
  with Sys_error e -> Error e

let or_die = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1

(* --- Common options ------------------------------------------------------ *)

let design_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "design"; "d" ] ~docv:"FILE" ~doc:"Verilog design under test.")

let golden_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "golden"; "g" ] ~docv:"FILE"
        ~doc:"Previously-functioning (golden) version of the design, used to\n\
              derive the expected-behaviour oracle.")

let testbench_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "testbench"; "t" ] ~docv:"FILE" ~doc:"Testbench source.")

let top_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "top" ] ~docv:"MODULE" ~doc:"Top (testbench) module to elaborate.")

let clock_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "clock" ] ~docv:"PATH"
        ~doc:"Qualified clock signal, e.g. counter_tb.clk.")

let dut_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dut" ] ~docv:"PATH"
        ~doc:"Qualified DUT instance path, e.g. counter_tb.dut.")

let target_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "target" ] ~docv:"MODULE" ~doc:"Module under repair.")

let spec_of top clock dut : Sim.Simulate.spec = { top; clock; dut_path = dut }

let backend_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("event", Sim.Simulate.Event);
             ("compiled", Sim.Simulate.Compiled);
             ("auto", Sim.Simulate.Auto);
           ])
        Sim.Simulate.Auto
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Simulation backend: $(b,event) interprets on the event-driven\n\
           scheduler; $(b,compiled) lowers each design once to a levelized\n\
           cycle evaluator and reuses it; $(b,auto) (the default) compiles\n\
           when the design is supported and falls back to the event engine\n\
           otherwise. Fallbacks are reported, never silent, and both\n\
           backends produce identical traces and fitness scores.")

(* --- Observability options ----------------------------------------------

   Three independent sinks, each enabled by naming an output file. All
   default off; when off, the instrumented code paths reduce to a boolean
   test per site. *)

let obs_args =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON timeline of the run here;\n\
             load it in Perfetto (ui.perfetto.dev) or chrome://tracing.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the metrics registry (counters, gauges, log-scale\n\
             histograms) as JSON here and print a one-line summary to\n\
             stderr.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append one JSONL record per GP generation (or brute-force\n\
             batch) here, flushed per record so a running repair can be\n\
             followed with tail -f.")
  in
  let profile =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Self-profile the run and write the report (per-stack time,\n\
             GC deltas) as JSON here; a sibling FILE.folded file holds\n\
             FlameGraph/speedscope folded stacks.")
  in
  Term.(const (fun t m j p -> (t, m, j, p)) $ trace $ metrics $ journal $ profile)

(* The journal summary of a profiled run: per-region totals and GC work,
   small enough to sit beside the other journal records. The full path
   tree goes to the --profile file, not the journal, and the record is
   only emitted when profiling was requested, so default journals stay
   byte-identical across parallelism degrees. *)
let profile_journal_record (r : Obs.Profile.report) =
  [
    ("type", Obs.Json.Str "profile");
    ("total_ns", Obs.Json.Int r.r_total_ns);
    ( "regions",
      Obs.Json.List
        (List.map
           (fun (name, ns, count) ->
             Obs.Json.Obj
               [
                 ("name", Obs.Json.Str name);
                 ("ns", Obs.Json.Int ns);
                 ("count", Obs.Json.Int count);
               ])
           (Obs.Profile.regions r)) );
    ( "gc",
      Obs.Json.Obj
        [
          ("minor_words", Obs.Json.Float r.r_gc.gd_minor_words);
          ("promoted_words", Obs.Json.Float r.r_gc.gd_promoted_words);
          ("major_words", Obs.Json.Float r.r_gc.gd_major_words);
          ("minor_collections", Obs.Json.Int r.r_gc.gd_minor_collections);
          ("major_collections", Obs.Json.Int r.r_gc.gd_major_collections);
        ] );
  ]

(* Run [f] with the requested sinks open, then flush them. [f] returns an
   exit code rather than calling [exit] so the sinks are written even on
   failure paths ([exit] would skip the cleanup). *)
let with_obs ?(detail = false) (trace, metrics, journal, profile)
    (f : unit -> int) : unit =
  (match trace with None -> () | Some _ -> Obs.Trace.start ~detail ());
  (match metrics with None -> () | Some _ -> Obs.Metrics.set_enabled true);
  (match journal with None -> () | Some path -> Obs.Journal.open_file path);
  (match profile with None -> () | Some _ -> Obs.Profile.start ());
  let code =
    Fun.protect
      ~finally:(fun () ->
        (match profile with
        | None -> ()
        | Some path ->
            Obs.Profile.stop ();
            let r = Obs.Profile.report () in
            List.iter
              (fun msg -> Printf.eprintf "profile imbalance: %s\n" msg)
              r.Obs.Profile.r_imbalances;
            Out_channel.with_open_text path (fun oc ->
                output_string oc (Obs.Json.to_string (Obs.Profile.to_json r));
                output_char oc '\n');
            Out_channel.with_open_text (path ^ ".folded") (fun oc ->
                output_string oc (Obs.Profile.folded r));
            if Obs.Journal.enabled () then
              Obs.Journal.emit (profile_journal_record r);
            Printf.eprintf "profile written to %s (+.folded)\n%!" path);
        (match trace with
        | None -> ()
        | Some path ->
            List.iter
              (fun msg -> Printf.eprintf "trace imbalance: %s\n" msg)
              (Obs.Trace.imbalances ());
            Obs.Trace.write_file path;
            Printf.eprintf "trace written to %s\n%!" path);
        (match metrics with
        | None -> ()
        | Some path ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc (Obs.Metrics.dump_string ());
                output_char oc '\n');
            Printf.eprintf "%s\nmetrics written to %s\n%!"
              (Obs.Metrics.summary ()) path;
            Obs.Metrics.set_enabled false;
            Obs.Metrics.reset ());
        Obs.Journal.close ())
      f
  in
  if code <> 0 then exit code

(* --- simulate ------------------------------------------------------------- *)

let simulate design testbench top clock dut backend show_display show_wave
    vcd_path obs =
  (* [detail] turns on per-timestep scheduler counter sampling: a single
     simulation is small enough that the sample volume is welcome. *)
  with_obs ~detail:true obs @@ fun () ->
  let d = or_die (read_file design) and tb = or_die (read_file testbench) in
  (* When dumping waveforms we drive the engine directly so the VCD
     observer can be attached before time 0. *)
  (match vcd_path with
  | None -> ()
  | Some path -> (
      match Verilog.Parser.parse_design_result (d ^ "\n" ^ tb) with
      | Error e ->
          Printf.eprintf "%s\n" e;
          exit 1
      | Ok parsed ->
          let elab = Sim.Elaborate.elaborate parsed ~top in
          let vcd = Sim.Vcd.attach elab.st in
          ignore (Sim.Engine.run elab);
          Sim.Vcd.to_file vcd path;
          Printf.printf "waveform written to %s\n" path));
  match
    Sim.Simulate.run_source ~backend ~source:(d ^ "\n" ^ tb)
      (spec_of top clock dut)
  with
  | Error (Sim.Simulate.Elab_failure m) ->
      Printf.eprintf "elaboration failed: %s\n" m;
      1
  | Ok r ->
      Printf.printf "outcome: %s (t=%d, %d statements, backend: %s)\n"
        (match r.outcome with
        | Sim.Engine.Finished -> "$finish"
        | Sim.Engine.Quiescent -> "event queue drained"
        | Sim.Engine.Time_limit_reached -> "time limit"
        | Sim.Engine.Budget_exceeded m -> "budget exceeded: " ^ m)
        r.end_time r.steps
        (Sim.Simulate.backend_used_to_string r.backend_used);
      if show_display && r.display <> "" then (
        print_endline "--- $display output ---";
        print_string r.display);
      print_endline "--- recorded trace ---";
      print_string (Sim.Recorder.to_string r.trace);
      if show_wave then (
        print_endline "--- waveform ---";
        print_string (Sim.Wave.render r.trace));
      0

let simulate_cmd =
  let doc = "Simulate a design under its testbench and print the recorded trace." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ design_arg $ testbench_arg $ top_arg $ clock_arg
      $ dut_arg $ backend_arg
      $ Arg.(value & flag & info [ "display" ] ~doc:"Show \\$display output.")
      $ Arg.(value & flag & info [ "wave" ] ~doc:"Render an ASCII waveform.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "vcd" ] ~docv:"FILE" ~doc:"Also dump a VCD waveform.")
      $ obs_args)

(* --- oracle ----------------------------------------------------------------- *)

let oracle design testbench top clock dut =
  let d = or_die (read_file design) and tb = or_die (read_file testbench) in
  let parsed =
    match Verilog.Parser.parse_design_result (d ^ "\n" ^ tb) with
    | Ok x -> x
    | Error e ->
        Printf.eprintf "%s\n" e;
        exit 1
  in
  let tr = Cirfix.Oracle.of_golden_design parsed (spec_of top clock dut) in
  print_string (Cirfix.Oracle.to_csv tr)

let oracle_cmd =
  let doc =
    "Simulate a golden design and emit the expected-behaviour oracle as CSV."
  in
  Cmd.v
    (Cmd.info "oracle" ~doc)
    Term.(const oracle $ design_arg $ testbench_arg $ top_arg $ clock_arg $ dut_arg)

(* --- localize ----------------------------------------------------------------- *)

let localize design golden testbench target top clock dut =
  let faulty = or_die (read_file design)
  and golden_src = or_die (read_file golden)
  and tb = or_die (read_file testbench) in
  let problem =
    Cirfix.Problem.make ~name:"cli" ~faulty ~golden:golden_src ~testbench:tb
      ~target (spec_of top clock dut)
  in
  let ev = Cirfix.Evaluate.create Cirfix.Config.default problem in
  let m = Cirfix.Problem.target_module problem in
  let o = Cirfix.Evaluate.eval_module ev m in
  let mismatch =
    Cirfix.Fitness.mismatched_signals ~expected:problem.oracle ~actual:o.trace
  in
  Printf.printf "fitness of the faulty design: %.4f\n" o.fitness;
  Printf.printf "output mismatch set: %s\n" (String.concat ", " mismatch);
  let r = Cirfix.Fault_loc.localize m ~mismatch in
  Printf.printf "transitive mismatch set: %s\n"
    (String.concat ", " (Cirfix.Fault_loc.NameSet.elements r.mismatch));
  Printf.printf "fixed point reached after %d iterations\n" r.iterations;
  Printf.printf "implicated statements (%d nodes total):\n"
    (Cirfix.Fault_loc.IdSet.cardinal r.fl);
  List.iter
    (fun (s : Verilog.Ast.stmt) ->
      Printf.printf "  [%d] %s\n" s.Verilog.Ast.sid
        (String.map
           (function '\n' -> ' ' | c -> c)
           (Verilog.Pp.stmt_to_string s)))
    (Cirfix.Fault_loc.fl_statements m r);
  (* Slice membership: the backward cone of the mismatching outputs
     (Verilog.Slice), the region a --slice repair run would search. *)
  let plan =
    let outs = Verilog.Slice.output_ports m in
    let seed = List.filter (fun o -> List.mem o outs) mismatch in
    Verilog.Slice.slice ~design:problem.design m
      ~outputs:(if seed = [] then outs else seed)
  in
  let cone = Verilog.Slice.cone_lines m plan in
  Printf.printf "backward cone of the mismatch: %d/%d nodes, %d/%d processes\n"
    (List.length plan.sl_kept) plan.sl_nodes_total plan.sl_procs_kept
    plan.sl_procs_total;
  (* Annotated source dump: suspiciousness = 1/round of implication; the
     second gutter column is cone membership (in/out). *)
  print_string "annotated source (heat = 1/round, in/out = mismatch cone):\n";
  List.iter
    (fun (text, w) ->
      let mark =
        if String.trim text = "" then "   "
        else if Hashtbl.mem cone (String.trim text) then "in "
        else "out"
      in
      if w > 0. then Printf.printf "  %4.2f %s | %s\n" w mark text
      else Printf.printf "       %s | %s\n" mark text)
    (Cirfix.Fault_loc.heat_lines m r)

let localize_cmd =
  let doc = "Run CirFix's dataflow fault localization on a faulty design." in
  Cmd.v
    (Cmd.info "localize" ~doc)
    Term.(
      const localize $ design_arg $ golden_arg $ testbench_arg $ target_arg
      $ top_arg $ clock_arg $ dut_arg)

(* --- slice ----------------------------------------------------------------- *)

let slice design testbench target top clock dut outputs focus out tb_out =
  let d = or_die (read_file design) and tb_src = or_die (read_file testbench) in
  let parsed =
    match Verilog.Parser.parse_design_result (d ^ "\n" ^ tb_src) with
    | Ok x -> x
    | Error e ->
        Printf.eprintf "%s\n" e;
        exit 1
  in
  let find name =
    match
      List.find_opt (fun (m : Verilog.Ast.module_decl) -> m.mod_id = name) parsed
    with
    | Some m -> m
    | None ->
        Printf.eprintf "error: no module %s in the design\n" name;
        exit 1
  in
  let m = find target and tb = find top in
  let inst =
    let prefix = top ^ "." in
    if String.length dut > String.length prefix
       && String.sub dut 0 (String.length prefix) = prefix
    then String.sub dut (String.length prefix) (String.length dut - String.length prefix)
    else or_die (Error (Printf.sprintf "--dut must be %s.<instance>" top))
  in
  let out_ports = Verilog.Slice.output_ports m in
  let tb_read = Verilog.Slice.tb_read_outputs ~tb ~inst ~target:m in
  let seed =
    match outputs with
    | None -> out_ports
    | Some given ->
        List.iter
          (fun o ->
            if not (List.mem o out_ports) then (
              Printf.eprintf "error: %s is not an output port of %s\n" o target;
              exit 1))
          given;
        (* Outputs the testbench reads back shape the stimulus; dropping
           them would change what the slice is simulated against. *)
        List.sort_uniq compare (given @ Verilog.Slice.Names.elements tb_read)
  in
  let focus =
    Option.map (fun ids -> Verilog.Slice.Ids.of_list ids) focus
  in
  let plan = Verilog.Slice.slice ~design:parsed ?focus m ~outputs:seed in
  (* Manifest. *)
  Printf.printf "slice of %s seeded on outputs: %s\n" target
    (String.concat ", " seed);
  if outputs <> None && not (Verilog.Slice.Names.is_empty tb_read) then
    Printf.printf "  tb-read outputs retained: %s\n"
      (String.concat ", " (Verilog.Slice.Names.elements tb_read));
  Printf.printf "  nodes: %d/%d kept, processes: %d/%d\n"
    (List.length plan.sl_kept)
    plan.sl_nodes_total plan.sl_procs_kept plan.sl_procs_total;
  Printf.printf "  size: %d/%d AST nodes (%.0f%%)\n"
    (Verilog.Ast_utils.module_size plan.sl_module)
    (Verilog.Ast_utils.module_size m)
    (100.
    *. float_of_int (Verilog.Ast_utils.module_size plan.sl_module)
    /. float_of_int (max 1 (Verilog.Ast_utils.module_size m)));
  Printf.printf "  inputs: %s\n" (String.concat ", " plan.sl_inputs);
  Printf.printf "  outputs: %s\n" (String.concat ", " plan.sl_outputs);
  Printf.printf "  promoted cut points: %s\n"
    (match plan.sl_promoted with [] -> "(none)" | l -> String.concat ", " l);
  Printf.printf "  kept item ids: %s\n"
    (String.concat ", " (List.map string_of_int plan.sl_kept));
  Printf.printf "  dropped item ids: %s\n"
    (match plan.sl_dropped with
    | [] -> "(none)"
    | l -> String.concat ", " (List.map string_of_int l));
  Printf.printf "  structural hash: %s\n" plan.sl_hash;
  let tb' = Verilog.Slice.rewrite_testbench ~tb ~inst ~target:m plan in
  (* Promoted cut points need driving: simulate the whole design once with
     the cut nets re-exported as probe outputs, then replay the recorded
     waveforms into the __slice_* registers of the rewritten testbench. *)
  let tb_final =
    if plan.sl_promoted = [] then tb'
    else begin
      let probed =
        List.map
          (fun (md : Verilog.Ast.module_decl) ->
            if md.mod_id = target then Verilog.Slice.probe_module m plan
            else if md.mod_id = top then
              Verilog.Slice.probe_testbench ~tb ~inst ~target:m plan
            else md)
          parsed
      in
      match Sim.Simulate.run probed (spec_of top clock dut) with
      | Error (Sim.Simulate.Elab_failure e) ->
          Printf.eprintf "probe simulation failed to elaborate: %s\n" e;
          exit 1
      | Ok r ->
          let strip n =
            let p = "__probe_" in
            if String.length n > String.length p
               && String.sub n 0 (String.length p) = p
            then Some (String.sub n (String.length p) (String.length n - String.length p))
            else None
          in
          let samples =
            List.map
              (fun (s : Sim.Recorder.sample) ->
                ( s.t,
                  List.filter_map
                    (fun (n, v) -> Option.map (fun b -> (b, v)) (strip n))
                    s.values ))
              r.trace
          in
          let replay = Verilog.Slice.replay_items plan ~samples in
          Printf.printf
            "  replay harness: %d sampled times driving %d cut register(s)\n"
            (List.length samples)
            (List.length plan.sl_promoted);
          { tb' with items = tb'.items @ replay }
    end
  in
  let sliced_design =
    List.filter_map
      (fun (md : Verilog.Ast.module_decl) ->
        if md.mod_id = top then None
        else if md.mod_id = target then Some plan.sl_module
        else Some md)
      parsed
  in
  let design_src =
    String.concat "\n" (List.map Verilog.Pp.module_to_string sliced_design)
  in
  let tb_txt = Verilog.Pp.module_to_string tb_final in
  (match out with
  | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc design_src);
      Printf.printf "sliced design written to %s\n" path
  | None ->
      print_endline "--- sliced design ---";
      print_string design_src);
  (match tb_out with
  | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc tb_txt);
      Printf.printf "rewritten testbench written to %s\n" path
  | None ->
      print_endline "--- rewritten testbench ---";
      print_string tb_txt);
  0

let slice_cmd =
  let doc =
    "Extract the cone-of-influence slice of a module: the backward cone of\n\
     chosen output ports (optionally intersected with the forward cone of\n\
     suspicious statements via $(b,--focus)), emitted as a self-contained\n\
     module plus a rewritten testbench. Cut nets severed by a focus\n\
     intersection are promoted to input ports and driven by a replay\n\
     harness recorded from one whole-design simulation."
  in
  Cmd.v (Cmd.info "slice" ~doc)
    Term.(
      const (fun a b c d e f g h i j -> ignore (slice a b c d e f g h i j))
      $ design_arg $ testbench_arg $ target_arg $ top_arg $ clock_arg $ dut_arg
      $ Arg.(
          value
          & opt (some (list string)) None
          & info [ "outputs" ] ~docv:"NAMES"
              ~doc:
                "Comma-separated output ports seeding the backward cone\n\
                 (default: all output ports of the target).")
      $ Arg.(
          value
          & opt (some (list int)) None
          & info [ "focus" ] ~docv:"IDS"
              ~doc:
                "Comma-separated statement ids (as printed by\n\
                 $(b,localize)) whose forward cone intersects the slice;\n\
                 in-cone logic outside it is dropped and its cut nets are\n\
                 promoted to inputs.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "output"; "o" ] ~docv:"FILE"
              ~doc:"Write the sliced design here (default: stdout).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "tb-out" ] ~docv:"FILE"
              ~doc:"Write the rewritten testbench here (default: stdout)."))

(* --- repair ----------------------------------------------------------------- *)

let jobs_arg =
  Arg.(
    value
    & opt int (Cirfix.Config.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel candidate evaluation (1 = sequential;\n\
           default: recommended domain count minus one). Results are\n\
           identical for any value when the wall-clock bound does not bind.")

let slice_flag =
  Arg.(
    value & flag
    & info [ "slice" ]
        ~doc:
          "Slice-based repair: extract the backward cone of the mismatching\n\
           outputs and run mutation, localization and candidate simulation\n\
           on the slice; every slice-plausible candidate is stitched back\n\
           into the whole design and re-verified there before being\n\
           reported. Falls back silently to whole-design repair when the\n\
           target is not the DUT module or the cone covers the design.")

(* Extra summary rows for a --slice run: whether slicing engaged, and the
   split between slice simulations and whole-design re-verifications. *)
let slice_rows ~slice ~sliced ~slice_sims ~stitched_verifies =
  if not slice then []
  else
    [
      ( "slice",
        if sliced then
          Printf.sprintf "engaged  (%d sims on the slice)" slice_sims
        else "fell back to whole-design repair" );
      ("stitched verifies", Printf.sprintf "%d" stitched_verifies);
    ]

(* The shared summary table of a search run (GP or brute-force): memo
   behaviour and the per-status reject breakdown, aligned. Rates are
   relative to total evaluations requested. *)
let summary_table ~probes ~lookups ~memo_hits ~semantic_hits ~dead_edit_skips
    ~mutants ~compile_errors ~static_rejects ~oversize_rejects ~racy_rejects
    ~runtime_races ~sims_event ~sims_compiled ~compiled_fallbacks
    ~sim_seconds_event ~sim_seconds_compiled ~jobs ~wall_seconds =
  (* Values are unpadded: [Stats.kv_table] recomputes both column widths
     from the rows, so counts of any magnitude stay aligned. *)
  let count_pct part =
    Printf.sprintf "%d  (%.1f%% of evals)" part
      (Cirfix.Stats.percent ~part ~total:lookups)
  in
  [
    ("evaluations requested", Printf.sprintf "%d" lookups);
    ("memo hits", count_pct memo_hits);
    ("semantic hits", count_pct semantic_hits);
    ("dead-edit skips", count_pct dead_edit_skips);
    ("probes (simulations)", count_pct probes);
    ("compile errors", count_pct compile_errors);
    ("static rejects", count_pct static_rejects);
    ("oversize rejects", count_pct oversize_rejects);
    ("racy rejects", count_pct racy_rejects);
  ]
  @ (match mutants with
    | Some m -> [ ("mutants generated", Printf.sprintf "%d" m) ]
    | None -> [])
  @ (match runtime_races with
    | Some races ->
        [
          ( "runtime races",
            Printf.sprintf "%d  (%.2f per 1000 sims)" races
              (Cirfix.Stats.races_per_ksim ~races ~probes) );
        ]
    | None -> [])
  (* Per-backend breakdown: counts are jobs-invariant (accounted at
     commit time); the in-sim rates are timing and vary run to run. *)
  @ [
      ( "sims (event)",
        Printf.sprintf "%d  (%.1f sims/sec in-sim)" sims_event
          (Cirfix.Stats.sims_per_sec ~probes:sims_event
             ~wall_seconds:sim_seconds_event) );
      ( "sims (compiled)",
        Printf.sprintf "%d  (%.1f sims/sec in-sim)" sims_compiled
          (Cirfix.Stats.sims_per_sec ~probes:sims_compiled
             ~wall_seconds:sim_seconds_compiled) );
      ("compiled fallbacks", Printf.sprintf "%d" compiled_fallbacks);
    ]
  @ [
      ( "throughput",
        Printf.sprintf "%.1f  sims/sec (jobs=%d)"
          (Cirfix.Stats.sims_per_sec ~probes ~wall_seconds)
          jobs );
      ("wall time", Printf.sprintf "%.1f  s" wall_seconds);
    ]

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Live status line on stderr (generation/depth, best fitness,\n\
           sims/sec, memo-hit rate, elapsed). Only when stderr is a TTY;\n\
           silent when piped.")

(* Returns [(show, clear)]. [show] rewrites one stderr status line,
   throttled to ~4 Hz so per-candidate callbacks cost a clock read and a
   compare; [clear] erases it before the final summary prints. Both are
   no-ops unless requested AND stderr is a terminal, so piped or logged
   runs see no control characters. *)
let make_progress ~enabled =
  if not (enabled && Unix.isatty Unix.stderr) then ((fun _ -> ()), fun () -> ())
  else begin
    let last = ref neg_infinity in
    let shown = ref false in
    let show line =
      let now = Unix.gettimeofday () in
      if now -. !last >= 0.25 then begin
        last := now;
        shown := true;
        Printf.eprintf "\r\027[K%s%!" line
      end
    in
    let clear () =
      if !shown then begin
        shown := false;
        Printf.eprintf "\r\027[K%!"
      end
    in
    (show, clear)
  end

let memo_pct ~memo_hits ~lookups =
  if lookups = 0 then 0. else 100. *. float_of_int memo_hits /. float_of_int lookups

let repair design golden testbench target top clock dut seed pop_size
    generations max_probes wall jobs backend race_screen race_check no_prune
    check_pruning slice output progress obs =
  with_obs obs @@ fun () ->
  let faulty = or_die (read_file design)
  and golden_src = or_die (read_file golden)
  and tb = or_die (read_file testbench) in
  let problem =
    Cirfix.Problem.make ~name:target ~faulty ~golden:golden_src ~testbench:tb
      ~target (spec_of top clock dut)
  in
  let cfg =
    {
      Cirfix.Config.default with
      seed;
      pop_size;
      max_generations = generations;
      max_probes;
      max_wall_seconds = wall;
      jobs;
      backend;
      screen_races = race_screen;
      check_races = race_check;
      prune = not no_prune;
      check_pruning;
      slice;
    }
  in
  let show_progress, clear_progress = make_progress ~enabled:progress in
  let live = progress && Unix.isatty Unix.stderr in
  let t_start = Unix.gettimeofday () in
  let on_generation (g : Cirfix.Gp.generation_stats) =
    (* The status line replaces the per-generation log when live; both on
       the same stream would interleave mid-line. *)
    if not live then
      Printf.eprintf "gen %2d: best %.3f mean %.3f (%d probes)\n%!" g.gen
        g.best_fitness g.mean_fitness g.probes_so_far
    else begin
      let elapsed = Unix.gettimeofday () -. t_start in
      show_progress
        (Printf.sprintf
           "gen %d  best %.3f  %.0f sims/s  memo %.0f%%  %.1fs elapsed" g.gen
           g.best_fitness
           (Cirfix.Stats.sims_per_sec ~probes:g.probes_so_far
              ~wall_seconds:elapsed)
           (memo_pct ~memo_hits:g.memo_hits_so_far ~lookups:g.lookups_so_far)
           elapsed)
    end
  in
  let r = Cirfix.Gp.repair ~on_generation cfg problem in
  clear_progress ();
  Printf.printf "initial fitness: %.4f\n" r.initial_fitness;
  print_endline
    (Cirfix.Stats.kv_table
       (summary_table ~probes:r.probes ~lookups:r.lookups
          ~memo_hits:r.memo_hits ~semantic_hits:r.semantic_hits
          ~dead_edit_skips:r.dead_edit_skips
          ~mutants:(Some r.mutants_generated)
          ~compile_errors:r.compile_errors ~static_rejects:r.static_rejects
          ~oversize_rejects:r.oversize_rejects ~racy_rejects:r.racy_rejects
          ~runtime_races:(if race_check then Some r.runtime_races else None)
          ~sims_event:r.sims_event ~sims_compiled:r.sims_compiled
          ~compiled_fallbacks:r.compiled_fallbacks
          ~sim_seconds_event:r.sim_seconds_event
          ~sim_seconds_compiled:r.sim_seconds_compiled ~jobs:cfg.jobs
          ~wall_seconds:r.wall_seconds
        @ slice_rows ~slice:cfg.slice ~sliced:r.sliced ~slice_sims:r.slice_sims
            ~stitched_verifies:r.stitched_verifies));
  (* Replay the final design (repaired when found, else the faulty
     original) under the repair testbench with coverage enabled, so the
     summary reports how much of the target the oracle actually
     exercises. *)
  (let final =
     match r.repaired_module with
     | Some m -> m
     | None -> Cirfix.Problem.target_module problem
   in
   let final_design = Cirfix.Problem.with_candidate problem final in
   try
     let elab = Sim.Elaborate.elaborate final_design ~top:problem.spec.top in
     Sim.Runtime.enable_coverage elab.st;
     ignore (Sim.Engine.run elab);
     let reports = Sim.Coverage.report elab.st final_design in
     match
       List.find_opt
         (fun (cr : Sim.Coverage.module_report) -> cr.mr_module = target)
         reports
     with
     | Some cr ->
         Printf.printf "target statement coverage: %.1f%% (%d/%d statements)\n"
           (Cirfix.Stats.coverage_percent ~covered:cr.mr_covered
              ~total:cr.mr_total)
           cr.mr_covered cr.mr_total
     | None -> ()
   with Sim.Runtime.Elab_error _ -> ());
  match (r.minimized, r.repaired_module) with
  | Some patch, Some m ->
      Printf.printf "REPAIRED (minimized to %d edits):\n  %s\n"
        (List.length patch)
        (Cirfix.Patch.to_string patch);
      let src = Verilog.Pp.module_to_string m in
      (match output with
      | Some path ->
          Out_channel.with_open_text path (fun oc -> output_string oc src);
          Printf.printf "repaired module written to %s\n" path
      | None ->
          print_endline "--- repaired module ---";
          print_endline src);
      0
  | _ ->
      print_endline "no repair found within the resource bounds";
      2

let repair_cmd =
  let doc = "Search for a repair to a faulty design (Algorithm 1)." in
  Cmd.v
    (Cmd.info "repair" ~doc)
    Term.(
      const repair $ design_arg $ golden_arg $ testbench_arg $ target_arg
      $ top_arg $ clock_arg $ dut_arg
      $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")
      $ Arg.(value & opt int 60 & info [ "pop-size" ] ~doc:"Population size.")
      $ Arg.(value & opt int 40 & info [ "generations" ] ~doc:"Max generations.")
      $ Arg.(value & opt int 8000 & info [ "max-probes" ] ~doc:"Fitness budget.")
      $ Arg.(value & opt float 120.0 & info [ "wall" ] ~doc:"Wall-clock bound (s).")
      $ jobs_arg $ backend_arg
      $ Arg.(
          value & flag
          & info [ "race-screen" ]
              ~doc:
                "Reject candidates containing a static race hazard (see the\n\
                 $(b,race) subcommand) before simulating them; rejections\n\
                 are reported as racy rejects.")
      $ Arg.(
          value & flag
          & info [ "race-check" ]
              ~doc:
                "Run candidate simulations with the dynamic race checker\n\
                 enabled and report the total races observed.")
      $ Arg.(
          value & flag
          & info [ "no-prune" ]
              ~doc:
                "Disable the static pruning lanes (semantic-hash folding\n\
                 and dead-edit skipping); every cache-missing candidate is\n\
                 simulated.")
      $ Arg.(
          value & flag
          & info [ "check-pruning" ]
              ~doc:
                "Verification mode: simulate every statically-pruned\n\
                 candidate anyway and fail if its fitness differs from the\n\
                 value the pruning lane served. Slow; for differential\n\
                 testing of the pruner.")
      $ slice_flag
      $ Arg.(
          value
          & opt (some string) None
          & info [ "output"; "o" ] ~docv:"FILE"
              ~doc:"Write the repaired module here.")
      $ progress_arg $ obs_args)

(* --- brute ------------------------------------------------------------------ *)

let brute design golden testbench target top clock dut max_depth max_probes
    wall jobs backend race_screen no_prune check_pruning slice progress obs =
  with_obs obs @@ fun () ->
  let faulty = or_die (read_file design)
  and golden_src = or_die (read_file golden)
  and tb = or_die (read_file testbench) in
  let problem =
    Cirfix.Problem.make ~name:target ~faulty ~golden:golden_src ~testbench:tb
      ~target (spec_of top clock dut)
  in
  let cfg =
    {
      Cirfix.Config.default with
      max_probes;
      max_wall_seconds = wall;
      jobs;
      backend;
      screen_races = race_screen;
      prune = not no_prune;
      check_pruning;
      slice;
    }
  in
  let show_progress, clear_progress = make_progress ~enabled:progress in
  let t_start = Unix.gettimeofday () in
  let on_progress (p : Cirfix.Brute_force.progress) =
    let elapsed = Unix.gettimeofday () -. t_start in
    show_progress
      (Printf.sprintf
         "depth %d  tried %d  best %.3f  %.0f sims/s  memo %.0f%%  %.1fs \
          elapsed"
         p.bp_depth p.bp_tried p.bp_best
         (Cirfix.Stats.sims_per_sec ~probes:p.bp_probes ~wall_seconds:elapsed)
         (memo_pct ~memo_hits:p.bp_memo_hits ~lookups:p.bp_lookups)
         elapsed)
  in
  let r = Cirfix.Brute_force.search ~max_depth ~on_progress cfg problem in
  clear_progress ();
  Printf.printf "candidates tried: %d (depth <= %d)\n" r.candidates_tried
    max_depth;
  print_endline
    (Cirfix.Stats.kv_table
       (summary_table ~probes:r.probes ~lookups:r.lookups
          ~memo_hits:r.memo_hits ~semantic_hits:r.semantic_hits
          ~dead_edit_skips:r.dead_edit_skips ~mutants:None
          ~compile_errors:r.compile_errors ~static_rejects:r.static_rejects
          ~oversize_rejects:r.oversize_rejects ~racy_rejects:r.racy_rejects
          ~runtime_races:None ~sims_event:r.sims_event
          ~sims_compiled:r.sims_compiled
          ~compiled_fallbacks:r.compiled_fallbacks
          ~sim_seconds_event:r.sim_seconds_event
          ~sim_seconds_compiled:r.sim_seconds_compiled ~jobs:cfg.jobs
          ~wall_seconds:r.wall_seconds
        @ slice_rows ~slice:cfg.slice ~sliced:r.sliced ~slice_sims:r.slice_sims
            ~stitched_verifies:r.stitched_verifies));
  match r.repaired with
  | Some patch ->
      Printf.printf "REPAIRED (%d edits):\n  %s\n" (List.length patch)
        (Cirfix.Patch.to_string patch);
      0
  | None ->
      print_endline "no repair found within the resource bounds";
      2

let brute_cmd =
  let doc =
    "Search for a repair by brute-force edit enumeration (the paper's RQ1\n\
     baseline): breadth-first over edit depth, no fault localization, no\n\
     fitness guidance beyond the plausibility check."
  in
  Cmd.v (Cmd.info "brute" ~doc)
    Term.(
      const brute $ design_arg $ golden_arg $ testbench_arg $ target_arg
      $ top_arg $ clock_arg $ dut_arg
      $ Arg.(
          value & opt int 2
          & info [ "max-depth" ] ~docv:"N" ~doc:"Maximum edits per patch.")
      $ Arg.(value & opt int 8000 & info [ "max-probes" ] ~doc:"Fitness budget.")
      $ Arg.(
          value & opt float 120.0 & info [ "wall" ] ~doc:"Wall-clock bound (s).")
      $ jobs_arg $ backend_arg
      $ Arg.(
          value & flag
          & info [ "race-screen" ]
              ~doc:"Reject statically racy candidates before simulation.")
      $ Arg.(
          value & flag
          & info [ "no-prune" ]
              ~doc:"Disable the static pruning lanes.")
      $ Arg.(
          value & flag
          & info [ "check-pruning" ]
              ~doc:
                "Simulate statically-pruned candidates anyway and fail on\n\
                 any fitness mismatch (differential testing of the pruner).")
      $ slice_flag $ progress_arg $ obs_args)

(* --- profile ---------------------------------------------------------------- *)

(* Canonical ledger row order: pipeline position, not alphabetical, so
   event and compiled columns line up on the same phases. *)
let region_order =
  [ "elab"; "setup"; "comb"; "active"; "nba"; "monitor"; "advance"; "collect" ]

let is_proc_frame name =
  List.exists
    (fun pre ->
      String.length name > String.length pre
      && String.sub name 0 (String.length pre) = pre)
    [ "proc:"; "init:"; "commit:"; "gen:"; "node:" ]

(* One profiled measurement of a backend: a warm-up run (unprofiled, so a
   compiled cache miss does not pollute the ledger), then [runs] profiled
   runs under one wall-clock measurement. *)
type backend_profile = {
  pb_name : string;
  pb_used : string; (* backend actually used (fallbacks are visible) *)
  pb_report : Obs.Profile.report;
  pb_wall_ns : int;
  pb_edges : int; (* recorder samples per run x runs *)
}

let profile_backend ~runs design spec backend name : backend_profile =
  let run () =
    match Sim.Simulate.run ~backend design spec with
    | Error (Sim.Simulate.Elab_failure m) ->
        or_die (Error (Printf.sprintf "elaboration failed: %s" m))
    | Ok r -> r
  in
  let warm = run () in
  Obs.Profile.start ();
  let t0 = Obs.Clock.now_ns () in
  let last = ref warm in
  for _ = 1 to runs do
    last := run ()
  done;
  let wall_ns = Obs.Clock.now_ns () - t0 in
  Obs.Profile.stop ();
  {
    pb_name = name;
    pb_used = Sim.Simulate.backend_used_to_string !last.Sim.Simulate.backend_used;
    pb_report = Obs.Profile.report ();
    pb_wall_ns = wall_ns;
    pb_edges = runs * List.length !last.Sim.Simulate.trace;
  }

let coverage_of (b : backend_profile) =
  if b.pb_wall_ns = 0 then 1.0
  else float_of_int b.pb_report.r_total_ns /. float_of_int b.pb_wall_ns

(* Rows of (label, per-backend ns/edge cells), over the union of names
   seen by any backend, canonical regions first then by time. *)
let ledger_rows ~select (backends : backend_profile list) =
  let per_backend =
    List.map (fun b -> (b, select b.pb_report)) backends
  in
  let names =
    List.concat_map (fun (_, rows) -> List.map (fun (n, _, _) -> n) rows)
      per_backend
    |> List.sort_uniq compare
  in
  let rank n =
    let rec idx i = function
      | [] -> List.length region_order
      | r :: _ when r = n -> i
      | _ :: tl -> idx (i + 1) tl
    in
    idx 0 region_order
  in
  let time_of n =
    List.fold_left
      (fun acc (_, rows) ->
        List.fold_left
          (fun acc (n', ns, _) -> if n' = n then max acc ns else acc)
          acc rows)
      0 per_backend
  in
  List.sort
    (fun a b ->
      match compare (rank a) (rank b) with
      | 0 -> compare (time_of b, a) (time_of a, b)
      | c -> c)
    names
  |> List.map (fun n ->
         ( n,
           List.map
             (fun (b, rows) ->
               let ns =
                 List.fold_left
                   (fun acc (n', ns, _) -> if n' = n then acc + ns else acc)
                   0 rows
               in
               if b.pb_edges = 0 then None
               else Some (float_of_int ns /. float_of_int b.pb_edges))
             per_backend ))

let print_ledger (backends : backend_profile list) ~top_k =
  let cell = function None -> "-" | Some v -> Printf.sprintf "%.1f" v in
  let table title rows =
    let header =
      ("", List.map (fun b -> b.pb_name ^ " ns/edge") backends)
    in
    let widths =
      List.mapi
        (fun i _ ->
          List.fold_left
            (fun acc (_, cells) -> max acc (String.length (List.nth cells i)))
            (String.length (List.nth (snd header) i))
            rows)
        backends
    in
    let name_w =
      List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 rows
    in
    Printf.printf "%s\n" title;
    let line n cells =
      Printf.printf "  %-*s" name_w n;
      List.iteri
        (fun i c -> Printf.printf "  %*s" (List.nth widths i) c)
        cells;
      print_newline ()
    in
    line (fst header) (snd header);
    List.iter (fun (n, cells) -> line n cells) rows;
    print_newline ()
  in
  table "per-edge cost ledger (by scheduler region)"
    (List.map
       (fun (n, cells) -> (n, List.map cell cells))
       (ledger_rows ~select:Obs.Profile.regions backends));
  let proc_rows =
    ledger_rows
      ~select:(fun r ->
        List.filter (fun (n, _, _) -> is_proc_frame n) (Obs.Profile.by_leaf r))
      backends
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  table
    (Printf.sprintf "top %d process/node frames (self time)" top_k)
    (List.map (fun (n, cells) -> (n, List.map cell cells)) (take top_k proc_rows));
  List.iter
    (fun b ->
      Printf.printf
        "%s: %d edges, %.2f ms wall, %.2f ms attributed (%.1f%% coverage, \
         backend: %s)\n"
        b.pb_name b.pb_edges
        (float_of_int b.pb_wall_ns /. 1e6)
        (float_of_int b.pb_report.r_total_ns /. 1e6)
        (100. *. coverage_of b) b.pb_used)
    backends

let profile_json (backends : backend_profile list) ~runs =
  Obs.Json.Obj
    [
      ("runs", Obs.Json.Int runs);
      ( "backends",
        Obs.Json.List
          (List.map
             (fun b ->
               Obs.Json.Obj
                 [
                   ("backend", Obs.Json.Str b.pb_name);
                   ("backend_used", Obs.Json.Str b.pb_used);
                   ("edges", Obs.Json.Int b.pb_edges);
                   ("wall_ns", Obs.Json.Int b.pb_wall_ns);
                   ("coverage", Obs.Json.Float (coverage_of b));
                   ("report", Obs.Profile.to_json b.pb_report);
                 ])
             backends) );
    ]

let profile_run design testbench top clock dut which runs top_k folded out
    check =
  let d = or_die (read_file design) and tb = or_die (read_file testbench) in
  let parsed =
    or_die (Verilog.Parser.parse_design_result (d ^ "\n" ^ tb))
  in
  let spec = spec_of top clock dut in
  let wanted =
    match which with
    | `Both ->
        [ (Sim.Simulate.Event, "event"); (Sim.Simulate.Compiled, "compiled") ]
    | `Event -> [ (Sim.Simulate.Event, "event") ]
    | `Compiled -> [ (Sim.Simulate.Compiled, "compiled") ]
  in
  let backends =
    List.map
      (fun (backend, name) -> profile_backend ~runs parsed spec backend name)
      wanted
  in
  List.iter
    (fun b ->
      List.iter
        (fun msg -> Printf.eprintf "profile imbalance (%s): %s\n" b.pb_name msg)
        b.pb_report.Obs.Profile.r_imbalances)
    backends;
  print_ledger backends ~top_k;
  (match folded with
  | None -> ()
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          List.iter
            (fun b ->
              List.iter
                (fun (p : Obs.Profile.path) ->
                  Printf.fprintf oc "%s;%s %d\n" b.pb_name
                    (String.concat ";" p.p_stack)
                    p.p_ns)
                b.pb_report.r_paths)
            backends);
      Printf.printf "folded stacks written to %s\n" path);
  (match out with
  | None -> ()
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Obs.Json.to_string (profile_json backends ~runs));
          output_char oc '\n');
      Printf.printf "profile JSON written to %s\n" path);
  if check then begin
    let bad = List.filter (fun b -> coverage_of b < 0.9) backends in
    List.iter
      (fun b ->
        Printf.eprintf "coverage check failed: %s attributes %.1f%% < 90%%\n"
          b.pb_name (100. *. coverage_of b))
      bad;
    if bad <> [] then exit 1
  end;
  0

let profile_cmd =
  let doc =
    "Self-profile the simulator on a design: run it N times per backend\n\
     and print the per-edge cost ledger (ns per recorded clock edge, by\n\
     scheduler region and by process), event vs compiled side by side."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const (fun d t top clock dut which runs top_k folded out check ->
          ignore (profile_run d t top clock dut which runs top_k folded out check))
      $ design_arg $ testbench_arg $ top_arg $ clock_arg $ dut_arg
      $ Arg.(
          value
          & opt
              (enum [ ("both", `Both); ("event", `Event); ("compiled", `Compiled) ])
              `Both
          & info [ "backend" ] ~docv:"BACKEND"
              ~doc:"Which backend(s) to profile: $(b,event), $(b,compiled),\n\
                    or $(b,both) (default).")
      $ Arg.(
          value & opt int 10
          & info [ "runs" ] ~docv:"N"
              ~doc:"Profiled simulations per backend (after one unprofiled\n\
                    warm-up).")
      $ Arg.(
          value & opt int 10
          & info [ "top-k" ] ~docv:"K" ~doc:"Process frames to show.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "folded" ] ~docv:"FILE"
              ~doc:
                "Write FlameGraph/speedscope folded stacks here, one line\n\
                 per stack prefixed with the backend name.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out" ] ~docv:"FILE"
              ~doc:"Write the full ledger (reports, coverage) as JSON here.")
      $ Arg.(
          value & flag
          & info [ "check" ]
              ~doc:
                "Exit nonzero unless every profiled backend attributes at\n\
                 least 90% of measured wall time."))

(* --- coverage ---------------------------------------------------------------------- *)

let coverage design testbench top =
  let d = or_die (read_file design) and tb = or_die (read_file testbench) in
  match Verilog.Parser.parse_design_result (d ^ "\n" ^ tb) with
  | Error e ->
      Printf.eprintf "%s\n" e;
      exit 1
  | Ok parsed ->
      let elab = Sim.Elaborate.elaborate parsed ~top in
      Sim.Runtime.enable_coverage elab.st;
      ignore (Sim.Engine.run elab);
      (* Report only the design's modules, not the testbench. *)
      let design_mods =
        match Verilog.Parser.parse_design_result d with
        | Ok mods -> List.map (fun (m : Verilog.Ast.module_decl) -> m.mod_id) mods
        | Error _ -> []
      in
      List.iter
        (fun (r : Sim.Coverage.module_report) ->
          if List.mem r.mr_module design_mods then
            Format.printf "%a" Sim.Coverage.pp r)
        (Sim.Coverage.report elab.st parsed)

let coverage_cmd =
  let doc = "Report statement coverage of a design under its testbench." in
  Cmd.v
    (Cmd.info "coverage" ~doc)
    Term.(const coverage $ design_arg $ testbench_arg $ top_arg)

(* --- lint ------------------------------------------------------------------------ *)

let lint style_only semantic_only files =
  if style_only && semantic_only then
    or_die (Error "--style-only and --semantic-only are mutually exclusive");
  let total_errors = ref 0 in
  let total_findings = ref 0 in
  List.iter
    (fun path ->
      let src = or_die (read_file path) in
      match Verilog.Parser.parse_design_result src with
      | Error e ->
          Printf.printf "%s: parse error: %s\n" path e;
          incr total_errors;
          incr total_findings
      | Ok design ->
          let style = if semantic_only then [] else Verilog.Lint.check_design design in
          let semantic =
            if style_only then [] else Verilog.Analysis.check_design design
          in
          List.iter
            (fun (_, findings) ->
              List.iter
                (fun (f : Verilog.Lint.finding) ->
                  incr total_findings;
                  if f.severity = Verilog.Lint.Error then incr total_errors;
                  Format.printf "%s: %a@." path Verilog.Lint.pp_finding f)
                findings)
            (style @ semantic))
    files;
  if !total_findings = 0 then print_endline "no findings";
  if !total_errors > 0 then exit 1

let lint_args =
  Term.(
    const lint
    $ Arg.(
        value & flag
        & info [ "style-only" ]
            ~doc:"Only run the style/synthesizability lint rules.")
    $ Arg.(
        value & flag
        & info [ "semantic-only" ]
            ~doc:
              "Only run the semantic analyses (combinational loops,\n\
               uninitialized registers, width truncation, constant\n\
               conditions).")
    $ Arg.(
        non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Verilog files."))

let lint_cmd =
  let doc =
    "Run static checks over Verilog sources: style/synthesizability rules\n\
     (latch inference, incomplete sensitivity lists, blocking/non-blocking\n\
     misuse, multiple drivers) plus the semantic analyses used by the\n\
     repair engine's mutant screener (combinational loops, uninitialized\n\
     registers, width truncation, constant conditions). Exits non-zero if\n\
     any $(b,error)-severity finding fires."
  in
  Cmd.v (Cmd.info "lint" ~doc) lint_args

let analyze_cmd =
  let doc = "Alias of $(b,lint): run all static analyses over Verilog sources." in
  Cmd.v (Cmd.info "analyze" ~doc) lint_args

(* --- race ------------------------------------------------------------------------ *)

let race top files =
  let design =
    List.concat_map
      (fun path ->
        let src = or_die (read_file path) in
        match Verilog.Parser.parse_design_result src with
        | Error e ->
            Printf.eprintf "%s: parse error: %s\n" path e;
            exit 1
        | Ok d -> d)
      files
  in
  let tops =
    match top with Some t -> [ t ] | None -> Verilog.Race.roots design
  in
  let total_errors = ref 0 in
  let total = ref 0 in
  List.iter
    (fun t ->
      List.iter
        (fun (f : Verilog.Lint.finding) ->
          incr total;
          if f.severity = Verilog.Lint.Error then incr total_errors;
          Format.printf "%a@." Verilog.Lint.pp_finding f)
        (Verilog.Race.check_design ~top:t design))
    tops;
  Printf.printf "race: %d finding(s) across %d root(s)\n" !total
    (List.length tops);
  if !total_errors > 0 then exit 1

let race_cmd =
  let doc =
    "Run the elaboration-aware race analyzer over Verilog sources: flatten\n\
     the hierarchy under each top module (every never-instantiated module\n\
     unless $(b,--top) is given) and report scheduling hazards — write-write\n\
     races, blocking read-write races within a clock domain, mixed\n\
     blocking/non-blocking writes, and stale reads from incomplete\n\
     sensitivity lists. Exits non-zero if any $(b,error)-severity finding\n\
     fires."
  in
  Cmd.v (Cmd.info "race" ~doc)
    Term.(
      const race
      $ Arg.(
          value
          & opt (some string) None
          & info [ "top" ] ~docv:"MODULE"
              ~doc:"Only analyze the hierarchy rooted at MODULE.")
      $ Arg.(
          non_empty & pos_all file []
          & info [] ~docv:"FILE"
              ~doc:"Verilog files, parsed together as one design."))

(* --- scenarios ------------------------------------------------------------------ *)

let scenarios id dump run_it trials jobs race_screen race_check =
  let selected =
    match id with
    | Some n -> [ Bench_suite.Defects.find n ]
    | None -> Bench_suite.Defects.all
  in
  Cirfix.Pool.with_pool ~jobs @@ fun pool ->
  List.iter
    (fun (d : Bench_suite.Defects.t) ->
      Printf.printf "#%-3d %-22s cat%d  %s\n" d.id d.project d.category
        d.description;
      if dump then (
        print_endline "--- faulty source ---";
        print_endline (Bench_suite.Defects.inject d));
      if run_it then (
        let cfg =
          {
            (Bench_suite.Runner.scenario_config d) with
            screen_races = race_screen;
            check_races = race_check;
          }
        in
        let s = Bench_suite.Runner.run_defect ~cfg ~trials ~pool d in
        Printf.printf
          "  result: %s (%.1fs, %d probes, %.1f sims/sec, %d static rejects, \
           %d oversize rejects, %d racy rejects)\n"
          (if s.correct then "correct repair"
           else if s.repaired then "plausible repair"
           else "no repair")
          s.total_seconds s.probes
          (Cirfix.Stats.sims_per_sec ~probes:s.probes
             ~wall_seconds:s.total_seconds)
          s.static_rejects s.oversize_rejects s.racy_rejects;
        if race_check then
          Printf.printf "  runtime races: %d\n" s.runtime_races;
        (match s.patch with
        | Some p -> Printf.printf "  patch: %s\n" (Cirfix.Patch.to_string p)
        | None -> ())))
    selected

let scenarios_cmd =
  let doc = "List, dump, or run the 32 benchmark defect scenarios (Table 3)." in
  Cmd.v
    (Cmd.info "scenarios" ~doc)
    Term.(
      const scenarios
      $ Arg.(
          value
          & opt (some int) None
          & info [ "id" ] ~docv:"N" ~doc:"Only scenario N (1..32).")
      $ Arg.(value & flag & info [ "dump-faulty" ] ~doc:"Print the faulty source.")
      $ Arg.(value & flag & info [ "run" ] ~doc:"Run CirFix on the scenario(s).")
      $ Arg.(value & opt int 5 & info [ "trials" ] ~doc:"Trials per scenario.")
      $ jobs_arg
      $ Arg.(
          value & flag
          & info [ "race-screen" ]
              ~doc:"Reject statically racy candidates before simulation.")
      $ Arg.(
          value & flag
          & info [ "race-check" ]
              ~doc:"Enable the dynamic race checker during candidate runs."))

(* --- report ---------------------------------------------------------------------- *)

let report journal metrics out =
  let contents = or_die (read_file journal) in
  let records =
    or_die
      (Result.map_error
         (fun e -> Printf.sprintf "%s: %s" journal e)
         (Obs.Report.parse_journal contents))
  in
  let metrics_json =
    Option.map
      (fun path ->
        or_die
          (Result.map_error
             (fun e -> Printf.sprintf "%s: %s" path e)
             (Obs.Json.parse (or_die (read_file path)))))
      metrics
  in
  let html = Obs.Report.render ?metrics:metrics_json records in
  match out with
  | None -> print_string html
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc html);
      Printf.eprintf "wrote %s (%d journal records)\n" path
        (List.length records)

let report_cmd =
  let doc =
    "Render a repair journal (from --journal) as a self-contained HTML \
     report: fitness/diversity curves, the evaluation breakdown, per-signal \
     attribution, the fault-localization heatmap, and the winning patch's \
     lineage tree."
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const report
      $ Arg.(
          required
          & pos 0 (some file) None
          & info [] ~docv:"JOURNAL" ~doc:"Journal file (JSONL) to render.")
      $ Arg.(
          value
          & opt (some file) None
          & info [ "metrics" ] ~docv:"FILE"
              ~doc:"Optional metrics dump (JSON) to include.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "o"; "output" ] ~docv:"FILE"
              ~doc:"Write the report here (default: stdout)."))

(* --- campaign -------------------------------------------------------------------- *)

let campaign ids quick seeds jobs out_dir budget_scale progress =
  let scenarios =
    match ids with
    | Some ids -> List.map Bench_suite.Defects.find ids
    | None ->
        if quick then Bench_suite.Campaign.quick_scenarios ()
        else Bench_suite.Defects.all
  in
  let config =
    if quick then Bench_suite.Campaign.quick_config
    else Bench_suite.Runner.scenario_config ~budget_scale
  in
  let job_list = Bench_suite.Campaign.jobs ~scenarios ~seeds in
  let show_progress, clear_progress = make_progress ~enabled:progress in
  let t0 = Unix.gettimeofday () in
  let repaired = ref 0 in
  let on_done ~done_ ~total (r : Bench_suite.Campaign.job_result) =
    (match r.r_outcome with
    | Bench_suite.Campaign.Repaired -> incr repaired
    | _ -> ());
    let elapsed = Unix.gettimeofday () -. t0 in
    let eta =
      if done_ = 0 then 0.
      else elapsed /. float_of_int done_ *. float_of_int (total - done_)
    in
    show_progress
      (Printf.sprintf
         "campaign  %d/%d jobs | repair rate %.0f%% | elapsed %.0fs | eta \
          %.0fs"
         done_ total
         (100. *. float_of_int !repaired /. float_of_int done_)
         elapsed eta)
  in
  let results =
    Bench_suite.Campaign.run ~config ~on_done ~jobs ~out_dir job_list
  in
  clear_progress ();
  (* Per-scenario summary on stdout; the machine-readable view is the
     manifest (and `cirfix dashboard --table`). *)
  let by_id =
    List.sort_uniq compare
      (List.map (fun (d : Bench_suite.Defects.t) -> d.id) scenarios)
  in
  List.iter
    (fun id ->
      let rs =
        List.filter
          (fun (r : Bench_suite.Campaign.job_result) ->
            r.r_job.c_defect.id = id)
          results
      in
      let count p = List.length (List.filter p rs) in
      let project =
        match rs with
        | r :: _ -> r.r_job.c_defect.project
        | [] -> "?"
      in
      Printf.printf "scenario %2d  %-22s  repaired %d/%d  correct %d/%d%s\n"
        id project
        (count (fun r -> r.r_outcome = Bench_suite.Campaign.Repaired))
        (List.length rs)
        (count (fun r -> r.r_correct))
        (List.length rs)
        (match
           count (fun r ->
               match r.r_outcome with
               | Bench_suite.Campaign.Failed _ -> true
               | _ -> false)
         with
        | 0 -> ""
        | n -> Printf.sprintf "  errors %d" n))
    by_id;
  let total = List.length results in
  let repaired_total =
    List.length
      (List.filter
         (fun (r : Bench_suite.Campaign.job_result) ->
           r.r_outcome = Bench_suite.Campaign.Repaired)
         results)
  in
  Printf.printf
    "campaign: %d job(s), repair rate %.1f%%, wall %.1fs; manifest: %s\n"
    total
    (if total = 0 then 0.
     else 100. *. float_of_int repaired_total /. float_of_int total)
    (Unix.gettimeofday () -. t0)
    (Filename.concat out_dir "manifest.jsonl")

let campaign_cmd =
  let doc =
    "Corpus-wide repair campaign: run defect scenarios x seeds as parallel \
     jobs over the domain pool, writing one journal per job plus an \
     append-only manifest.jsonl; render the results with $(b,cirfix \
     dashboard)."
  in
  Cmd.v
    (Cmd.info "campaign" ~doc)
    Term.(
      const campaign
      $ Arg.(
          value
          & opt (some (list int)) None
          & info [ "scenarios" ] ~docv:"IDS"
              ~doc:
                "Comma-separated scenario ids (1..32) to sweep\n\
                 (default: all 32, or the quick subset with $(b,--quick)).")
      $ Arg.(
          value & flag
          & info [ "quick" ]
              ~doc:
                "Smoke sweep: a few fast scenarios under sharply reduced\n\
                 budgets; finishes in seconds.")
      $ Arg.(
          value & opt int 1
          & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per scenario (1..N).")
      $ jobs_arg
      $ Arg.(
          value
          & opt string "campaign-out"
          & info [ "out"; "o" ] ~docv:"DIR"
              ~doc:"Output directory for manifest.jsonl and per-job journals.")
      $ Arg.(
          value & opt float 1.0
          & info [ "budget-scale" ] ~docv:"F"
              ~doc:"Scale each scenario's probe/wall budgets by F.")
      $ progress_arg)

(* --- dashboard ------------------------------------------------------------------- *)

let dashboard manifest table out =
  let contents = or_die (read_file manifest) in
  let records, _ = Obs.Aggregate.parse_lenient contents in
  let write what text =
    match out with
    | None -> print_string text
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc text);
        Printf.eprintf "wrote %s (%s)\n" path what
  in
  match table with
  | Some `Csv -> write "csv table" (Obs.Dashboard.table_csv records)
  | Some `Json -> write "json table" (Obs.Dashboard.table_json records)
  | None ->
      let dir = Filename.dirname manifest in
      let runs =
        Obs.Aggregate.jobs_of_manifest records
        |> List.filter_map (fun (j : Obs.Aggregate.job) ->
               Obs.Aggregate.load_file (Filename.concat dir j.j_journal)
               |> Option.map (fun c ->
                      let recs, skipped = Obs.Aggregate.parse_lenient c in
                      ( j.j_journal,
                        Obs.Aggregate.run_of_records recs skipped )))
      in
      write "dashboard" (Obs.Dashboard.render ~manifest:records ~runs)

let dashboard_cmd =
  let doc =
    "Render a campaign manifest (plus its per-job journals) as one \
     self-contained HTML dashboard: repair-rate heat matrix, overlaid \
     fitness trajectories, corpus-wide operator funnel, per-scenario cost. \
     $(b,--table) emits the same aggregate as machine-readable CSV/JSON."
  in
  Cmd.v
    (Cmd.info "dashboard" ~doc)
    Term.(
      const dashboard
      $ Arg.(
          required
          & pos 0 (some file) None
          & info [] ~docv:"MANIFEST"
              ~doc:"Campaign manifest (manifest.jsonl) to aggregate.")
      $ Arg.(
          value
          & opt (some (enum [ ("csv", `Csv); ("json", `Json) ])) None
          & info [ "table" ] ~docv:"FMT"
              ~doc:"Emit a machine-readable table (csv or json) instead of \
                    HTML.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "o"; "output" ] ~docv:"FILE"
              ~doc:"Write the output here (default: stdout)."))

(* --- main ------------------------------------------------------------------------ *)

let () =
  let doc = "automated repair of defects in Verilog hardware designs" in
  let info = Cmd.info "cirfix" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            simulate_cmd;
            oracle_cmd;
            localize_cmd;
            slice_cmd;
            repair_cmd;
            brute_cmd;
            profile_cmd;
            scenarios_cmd;
            lint_cmd;
            analyze_cmd;
            race_cmd;
            coverage_cmd;
            report_cmd;
            campaign_cmd;
            dashboard_cmd;
          ]))
